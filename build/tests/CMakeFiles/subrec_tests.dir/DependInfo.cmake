
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autodiff_test.cc" "tests/CMakeFiles/subrec_tests.dir/autodiff_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/autodiff_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/subrec_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/subrec_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/subrec_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/subrec_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/subrec_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/subrec_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/subrec_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/la_test.cc" "tests/CMakeFiles/subrec_tests.dir/la_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/la_test.cc.o.d"
  "/root/repo/tests/labeling_test.cc" "tests/CMakeFiles/subrec_tests.dir/labeling_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/labeling_test.cc.o.d"
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/subrec_tests.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/nn_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/subrec_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rec_test.cc" "tests/CMakeFiles/subrec_tests.dir/rec_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/rec_test.cc.o.d"
  "/root/repo/tests/rules_test.cc" "tests/CMakeFiles/subrec_tests.dir/rules_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/rules_test.cc.o.d"
  "/root/repo/tests/subspace_test.cc" "tests/CMakeFiles/subrec_tests.dir/subspace_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/subspace_test.cc.o.d"
  "/root/repo/tests/text_test.cc" "tests/CMakeFiles/subrec_tests.dir/text_test.cc.o" "gcc" "tests/CMakeFiles/subrec_tests.dir/text_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/subrec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
