
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodiff/grad_check.cc" "src/CMakeFiles/subrec.dir/autodiff/grad_check.cc.o" "gcc" "src/CMakeFiles/subrec.dir/autodiff/grad_check.cc.o.d"
  "/root/repo/src/autodiff/tape.cc" "src/CMakeFiles/subrec.dir/autodiff/tape.cc.o" "gcc" "src/CMakeFiles/subrec.dir/autodiff/tape.cc.o.d"
  "/root/repo/src/cluster/bic.cc" "src/CMakeFiles/subrec.dir/cluster/bic.cc.o" "gcc" "src/CMakeFiles/subrec.dir/cluster/bic.cc.o.d"
  "/root/repo/src/cluster/gmm.cc" "src/CMakeFiles/subrec.dir/cluster/gmm.cc.o" "gcc" "src/CMakeFiles/subrec.dir/cluster/gmm.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/subrec.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/subrec.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/lof.cc" "src/CMakeFiles/subrec.dir/cluster/lof.cc.o" "gcc" "src/CMakeFiles/subrec.dir/cluster/lof.cc.o.d"
  "/root/repo/src/cluster/tsne.cc" "src/CMakeFiles/subrec.dir/cluster/tsne.cc.o" "gcc" "src/CMakeFiles/subrec.dir/cluster/tsne.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/subrec.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/subrec.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/subrec.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/subrec.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/subrec.dir/common/status.cc.o" "gcc" "src/CMakeFiles/subrec.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/subrec.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/subrec.dir/common/string_util.cc.o.d"
  "/root/repo/src/datagen/abstract_generator.cc" "src/CMakeFiles/subrec.dir/datagen/abstract_generator.cc.o" "gcc" "src/CMakeFiles/subrec.dir/datagen/abstract_generator.cc.o.d"
  "/root/repo/src/datagen/citation_model.cc" "src/CMakeFiles/subrec.dir/datagen/citation_model.cc.o" "gcc" "src/CMakeFiles/subrec.dir/datagen/citation_model.cc.o.d"
  "/root/repo/src/datagen/corpus_generator.cc" "src/CMakeFiles/subrec.dir/datagen/corpus_generator.cc.o" "gcc" "src/CMakeFiles/subrec.dir/datagen/corpus_generator.cc.o.d"
  "/root/repo/src/datagen/datasets.cc" "src/CMakeFiles/subrec.dir/datagen/datasets.cc.o" "gcc" "src/CMakeFiles/subrec.dir/datagen/datasets.cc.o.d"
  "/root/repo/src/datagen/discipline.cc" "src/CMakeFiles/subrec.dir/datagen/discipline.cc.o" "gcc" "src/CMakeFiles/subrec.dir/datagen/discipline.cc.o.d"
  "/root/repo/src/datagen/split.cc" "src/CMakeFiles/subrec.dir/datagen/split.cc.o" "gcc" "src/CMakeFiles/subrec.dir/datagen/split.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/subrec.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/subrec.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/ranking.cc" "src/CMakeFiles/subrec.dir/eval/ranking.cc.o" "gcc" "src/CMakeFiles/subrec.dir/eval/ranking.cc.o.d"
  "/root/repo/src/eval/regression.cc" "src/CMakeFiles/subrec.dir/eval/regression.cc.o" "gcc" "src/CMakeFiles/subrec.dir/eval/regression.cc.o.d"
  "/root/repo/src/graph/academic_graph.cc" "src/CMakeFiles/subrec.dir/graph/academic_graph.cc.o" "gcc" "src/CMakeFiles/subrec.dir/graph/academic_graph.cc.o.d"
  "/root/repo/src/graph/neighborhood.cc" "src/CMakeFiles/subrec.dir/graph/neighborhood.cc.o" "gcc" "src/CMakeFiles/subrec.dir/graph/neighborhood.cc.o.d"
  "/root/repo/src/la/matrix.cc" "src/CMakeFiles/subrec.dir/la/matrix.cc.o" "gcc" "src/CMakeFiles/subrec.dir/la/matrix.cc.o.d"
  "/root/repo/src/la/ops.cc" "src/CMakeFiles/subrec.dir/la/ops.cc.o" "gcc" "src/CMakeFiles/subrec.dir/la/ops.cc.o.d"
  "/root/repo/src/labeling/crf.cc" "src/CMakeFiles/subrec.dir/labeling/crf.cc.o" "gcc" "src/CMakeFiles/subrec.dir/labeling/crf.cc.o.d"
  "/root/repo/src/labeling/features.cc" "src/CMakeFiles/subrec.dir/labeling/features.cc.o" "gcc" "src/CMakeFiles/subrec.dir/labeling/features.cc.o.d"
  "/root/repo/src/labeling/trainer.cc" "src/CMakeFiles/subrec.dir/labeling/trainer.cc.o" "gcc" "src/CMakeFiles/subrec.dir/labeling/trainer.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/CMakeFiles/subrec.dir/nn/dense.cc.o" "gcc" "src/CMakeFiles/subrec.dir/nn/dense.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/subrec.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/subrec.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/subrec.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/subrec.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/subrec.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/subrec.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/rec/baselines_quality.cc" "src/CMakeFiles/subrec.dir/rec/baselines_quality.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/baselines_quality.cc.o.d"
  "/root/repo/src/rec/candidate_sets.cc" "src/CMakeFiles/subrec.dir/rec/candidate_sets.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/candidate_sets.cc.o.d"
  "/root/repo/src/rec/embedding_baselines.cc" "src/CMakeFiles/subrec.dir/rec/embedding_baselines.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/embedding_baselines.cc.o.d"
  "/root/repo/src/rec/jtie.cc" "src/CMakeFiles/subrec.dir/rec/jtie.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/jtie.cc.o.d"
  "/root/repo/src/rec/kgcn.cc" "src/CMakeFiles/subrec.dir/rec/kgcn.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/kgcn.cc.o.d"
  "/root/repo/src/rec/mlp_ncf.cc" "src/CMakeFiles/subrec.dir/rec/mlp_ncf.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/mlp_ncf.cc.o.d"
  "/root/repo/src/rec/nbcf.cc" "src/CMakeFiles/subrec.dir/rec/nbcf.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/nbcf.cc.o.d"
  "/root/repo/src/rec/nprec.cc" "src/CMakeFiles/subrec.dir/rec/nprec.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/nprec.cc.o.d"
  "/root/repo/src/rec/recommender.cc" "src/CMakeFiles/subrec.dir/rec/recommender.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/recommender.cc.o.d"
  "/root/repo/src/rec/ripplenet.cc" "src/CMakeFiles/subrec.dir/rec/ripplenet.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/ripplenet.cc.o.d"
  "/root/repo/src/rec/sampler.cc" "src/CMakeFiles/subrec.dir/rec/sampler.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/sampler.cc.o.d"
  "/root/repo/src/rec/svd.cc" "src/CMakeFiles/subrec.dir/rec/svd.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/svd.cc.o.d"
  "/root/repo/src/rec/wnmf.cc" "src/CMakeFiles/subrec.dir/rec/wnmf.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rec/wnmf.cc.o.d"
  "/root/repo/src/rules/ccs_tree.cc" "src/CMakeFiles/subrec.dir/rules/ccs_tree.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rules/ccs_tree.cc.o.d"
  "/root/repo/src/rules/expert_rules.cc" "src/CMakeFiles/subrec.dir/rules/expert_rules.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rules/expert_rules.cc.o.d"
  "/root/repo/src/rules/rule_fusion.cc" "src/CMakeFiles/subrec.dir/rules/rule_fusion.cc.o" "gcc" "src/CMakeFiles/subrec.dir/rules/rule_fusion.cc.o.d"
  "/root/repo/src/subspace/sem_model.cc" "src/CMakeFiles/subrec.dir/subspace/sem_model.cc.o" "gcc" "src/CMakeFiles/subrec.dir/subspace/sem_model.cc.o.d"
  "/root/repo/src/subspace/subspace_encoder.cc" "src/CMakeFiles/subrec.dir/subspace/subspace_encoder.cc.o" "gcc" "src/CMakeFiles/subrec.dir/subspace/subspace_encoder.cc.o.d"
  "/root/repo/src/subspace/trainer.cc" "src/CMakeFiles/subrec.dir/subspace/trainer.cc.o" "gcc" "src/CMakeFiles/subrec.dir/subspace/trainer.cc.o.d"
  "/root/repo/src/subspace/triplet_miner.cc" "src/CMakeFiles/subrec.dir/subspace/triplet_miner.cc.o" "gcc" "src/CMakeFiles/subrec.dir/subspace/triplet_miner.cc.o.d"
  "/root/repo/src/subspace/twin_network.cc" "src/CMakeFiles/subrec.dir/subspace/twin_network.cc.o" "gcc" "src/CMakeFiles/subrec.dir/subspace/twin_network.cc.o.d"
  "/root/repo/src/text/doc2vec.cc" "src/CMakeFiles/subrec.dir/text/doc2vec.cc.o" "gcc" "src/CMakeFiles/subrec.dir/text/doc2vec.cc.o.d"
  "/root/repo/src/text/hashed_ngram_encoder.cc" "src/CMakeFiles/subrec.dir/text/hashed_ngram_encoder.cc.o" "gcc" "src/CMakeFiles/subrec.dir/text/hashed_ngram_encoder.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/CMakeFiles/subrec.dir/text/tfidf.cc.o" "gcc" "src/CMakeFiles/subrec.dir/text/tfidf.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/subrec.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/subrec.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/subrec.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/subrec.dir/text/vocabulary.cc.o.d"
  "/root/repo/src/text/word2vec.cc" "src/CMakeFiles/subrec.dir/text/word2vec.cc.o" "gcc" "src/CMakeFiles/subrec.dir/text/word2vec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
