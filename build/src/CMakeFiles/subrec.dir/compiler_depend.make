# Empty compiler generated dependencies file for subrec.
# This may be replaced when dependencies are built.
