file(REMOVE_RECURSE
  "libsubrec.a"
)
