# Empty compiler generated dependencies file for innovation_analysis.
# This may be replaced when dependencies are built.
