file(REMOVE_RECURSE
  "CMakeFiles/innovation_analysis.dir/innovation_analysis.cpp.o"
  "CMakeFiles/innovation_analysis.dir/innovation_analysis.cpp.o.d"
  "innovation_analysis"
  "innovation_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innovation_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
