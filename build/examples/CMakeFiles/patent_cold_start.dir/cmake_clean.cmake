file(REMOVE_RECURSE
  "CMakeFiles/patent_cold_start.dir/patent_cold_start.cpp.o"
  "CMakeFiles/patent_cold_start.dir/patent_cold_start.cpp.o.d"
  "patent_cold_start"
  "patent_cold_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patent_cold_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
