# Empty dependencies file for patent_cold_start.
# This may be replaced when dependencies are built.
