file(REMOVE_RECURSE
  "CMakeFiles/paper_recommendation.dir/paper_recommendation.cpp.o"
  "CMakeFiles/paper_recommendation.dir/paper_recommendation.cpp.o.d"
  "paper_recommendation"
  "paper_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
