# Empty compiler generated dependencies file for paper_recommendation.
# This may be replaced when dependencies are built.
