file(REMOVE_RECURSE
  "CMakeFiles/table5_publication_counts.dir/table5_publication_counts.cc.o"
  "CMakeFiles/table5_publication_counts.dir/table5_publication_counts.cc.o.d"
  "table5_publication_counts"
  "table5_publication_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_publication_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
