# Empty compiler generated dependencies file for table5_publication_counts.
# This may be replaced when dependencies are built.
