# Empty dependencies file for table7_ablation_k.
# This may be replaced when dependencies are built.
