file(REMOVE_RECURSE
  "CMakeFiles/table7_ablation_k.dir/table7_ablation_k.cc.o"
  "CMakeFiles/table7_ablation_k.dir/table7_ablation_k.cc.o.d"
  "table7_ablation_k"
  "table7_ablation_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_ablation_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
