file(REMOVE_RECURSE
  "CMakeFiles/fig2_embedding_ablation.dir/fig2_embedding_ablation.cc.o"
  "CMakeFiles/fig2_embedding_ablation.dir/fig2_embedding_ablation.cc.o.d"
  "fig2_embedding_ablation"
  "fig2_embedding_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_embedding_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
