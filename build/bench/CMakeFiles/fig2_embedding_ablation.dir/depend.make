# Empty dependencies file for fig2_embedding_ablation.
# This may be replaced when dependencies are built.
