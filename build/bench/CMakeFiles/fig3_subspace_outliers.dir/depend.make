# Empty dependencies file for fig3_subspace_outliers.
# This may be replaced when dependencies are built.
