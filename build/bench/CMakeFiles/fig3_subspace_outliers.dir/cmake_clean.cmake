file(REMOVE_RECURSE
  "CMakeFiles/fig3_subspace_outliers.dir/fig3_subspace_outliers.cc.o"
  "CMakeFiles/fig3_subspace_outliers.dir/fig3_subspace_outliers.cc.o.d"
  "fig3_subspace_outliers"
  "fig3_subspace_outliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_subspace_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
