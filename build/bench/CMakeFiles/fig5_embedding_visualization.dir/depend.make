# Empty dependencies file for fig5_embedding_visualization.
# This may be replaced when dependencies are built.
