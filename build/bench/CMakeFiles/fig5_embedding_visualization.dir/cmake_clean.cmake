file(REMOVE_RECURSE
  "CMakeFiles/fig5_embedding_visualization.dir/fig5_embedding_visualization.cc.o"
  "CMakeFiles/fig5_embedding_visualization.dir/fig5_embedding_visualization.cc.o.d"
  "fig5_embedding_visualization"
  "fig5_embedding_visualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_embedding_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
