# Empty compiler generated dependencies file for table1_sem_correlation.
# This may be replaced when dependencies are built.
