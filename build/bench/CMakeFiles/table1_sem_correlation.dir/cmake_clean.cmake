file(REMOVE_RECURSE
  "CMakeFiles/table1_sem_correlation.dir/table1_sem_correlation.cc.o"
  "CMakeFiles/table1_sem_correlation.dir/table1_sem_correlation.cc.o.d"
  "table1_sem_correlation"
  "table1_sem_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sem_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
