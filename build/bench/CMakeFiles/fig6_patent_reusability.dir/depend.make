# Empty dependencies file for fig6_patent_reusability.
# This may be replaced when dependencies are built.
