file(REMOVE_RECURSE
  "CMakeFiles/fig6_patent_reusability.dir/fig6_patent_reusability.cc.o"
  "CMakeFiles/fig6_patent_reusability.dir/fig6_patent_reusability.cc.o.d"
  "fig6_patent_reusability"
  "fig6_patent_reusability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_patent_reusability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
