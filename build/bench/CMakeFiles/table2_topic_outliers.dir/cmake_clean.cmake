file(REMOVE_RECURSE
  "CMakeFiles/table2_topic_outliers.dir/table2_topic_outliers.cc.o"
  "CMakeFiles/table2_topic_outliers.dir/table2_topic_outliers.cc.o.d"
  "table2_topic_outliers"
  "table2_topic_outliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_topic_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
