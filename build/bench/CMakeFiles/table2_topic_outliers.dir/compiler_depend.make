# Empty compiler generated dependencies file for table2_topic_outliers.
# This may be replaced when dependencies are built.
