# Empty compiler generated dependencies file for table6_sample_ratio.
# This may be replaced when dependencies are built.
