file(REMOVE_RECURSE
  "CMakeFiles/table4_recommendation.dir/table4_recommendation.cc.o"
  "CMakeFiles/table4_recommendation.dir/table4_recommendation.cc.o.d"
  "table4_recommendation"
  "table4_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
