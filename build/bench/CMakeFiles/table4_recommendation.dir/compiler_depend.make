# Empty compiler generated dependencies file for table4_recommendation.
# This may be replaced when dependencies are built.
