file(REMOVE_RECURSE
  "CMakeFiles/table8_ablation_h.dir/table8_ablation_h.cc.o"
  "CMakeFiles/table8_ablation_h.dir/table8_ablation_h.cc.o.d"
  "table8_ablation_h"
  "table8_ablation_h.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_ablation_h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
