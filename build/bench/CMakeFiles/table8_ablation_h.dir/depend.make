# Empty dependencies file for table8_ablation_h.
# This may be replaced when dependencies are built.
