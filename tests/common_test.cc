#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace subrec {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, EveryCodeHasName) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

Status FailsThenPropagates() {
  SUBREC_RETURN_NOT_OK(Status::NotFound("missing"));
  return Status::Ok();
}

TEST(Status, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kNotFound);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.NextUint64() == b.NextUint64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBound) {
  Rng rng(4);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformInt(bound), bound);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(5);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(6);
  for (double mean : {0.5, 3.0, 20.0, 100.0}) {
    double total = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) total += rng.Poisson(mean);
    EXPECT_NEAR(total / n, mean, mean * 0.1 + 0.1);
  }
}

TEST(Rng, GammaMeanMatches) {
  Rng rng(8);
  const double shape = 1.6, scale = 0.45;
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.Gamma(shape, scale);
  EXPECT_NEAR(total / n, shape * scale, 0.03);
}

TEST(Rng, GammaSupportsShapeBelowOne) {
  Rng rng(81);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gamma(0.5, 2.0);
    EXPECT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total / n, 1.0, 0.06);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(9);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    auto sample = rng.SampleWithoutReplacement(30, 12);
    std::set<size_t> uniq(sample.begin(), sample.end());
    EXPECT_EQ(uniq.size(), 12u);
    for (size_t v : sample) EXPECT_LT(v, 30u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(11);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(13);
  Rng fork1 = a.Fork();
  Rng b(13);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(fork1.NextUint64(), fork2.NextUint64());
}

TEST(StringUtil, SplitDropsEmpty) {
  auto parts = SplitString("a,,b, c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD 123"), "mixed 123");
}

TEST(StringUtil, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(JoinStrings({}, "-"), "");
}

TEST(StringUtil, Fnv1aStableAndDistinct) {
  EXPECT_EQ(Fnv1aHash("hello"), Fnv1aHash("hello"));
  EXPECT_NE(Fnv1aHash("hello"), Fnv1aHash("hellp"));
  // Known FNV-1a 64-bit offset basis for the empty string.
  EXPECT_EQ(Fnv1aHash(""), 0xcbf29ce484222325ULL);
}

TEST(StringUtil, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace subrec
