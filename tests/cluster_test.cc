#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/bic.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/lof.h"
#include "cluster/tsne.h"
#include "common/rng.h"

namespace subrec::cluster {
namespace {

/// Two well-separated Gaussian blobs in 2-D.
la::Matrix TwoBlobs(int per_blob, Rng& rng, double separation = 8.0) {
  la::Matrix data(static_cast<size_t>(2 * per_blob), 2);
  for (int i = 0; i < per_blob; ++i) {
    data(static_cast<size_t>(i), 0) = rng.Gaussian(0.0, 0.5);
    data(static_cast<size_t>(i), 1) = rng.Gaussian(0.0, 0.5);
    data(static_cast<size_t>(per_blob + i), 0) =
        rng.Gaussian(separation, 0.5);
    data(static_cast<size_t>(per_blob + i), 1) =
        rng.Gaussian(separation, 0.5);
  }
  return data;
}

TEST(KMeans, SeparatesTwoBlobs) {
  Rng rng(1);
  la::Matrix data = TwoBlobs(40, rng);
  KMeansOptions options;
  options.num_clusters = 2;
  auto result = KMeans(data, options);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  // All of blob A in one cluster, all of blob B in the other.
  for (int i = 1; i < 40; ++i)
    EXPECT_EQ(r.assignments[static_cast<size_t>(i)], r.assignments[0]);
  for (int i = 41; i < 80; ++i)
    EXPECT_EQ(r.assignments[static_cast<size_t>(i)], r.assignments[40]);
  EXPECT_NE(r.assignments[0], r.assignments[40]);
  EXPECT_GT(r.iterations, 0);
}

TEST(KMeans, RejectsDegenerateInputs) {
  la::Matrix data(2, 2);
  KMeansOptions options;
  options.num_clusters = 5;
  EXPECT_FALSE(KMeans(data, options).ok());
  options.num_clusters = 0;
  EXPECT_FALSE(KMeans(data, options).ok());
}

TEST(KMeans, DeterministicGivenSeed) {
  Rng rng(2);
  la::Matrix data = TwoBlobs(30, rng);
  KMeansOptions options;
  options.num_clusters = 3;
  options.seed = 77;
  auto a = KMeans(data, options);
  auto b = KMeans(data, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().assignments, b.value().assignments);
  EXPECT_EQ(a.value().inertia, b.value().inertia);
}

TEST(Gmm, RecoversMixtureParameters) {
  Rng rng(3);
  la::Matrix data = TwoBlobs(120, rng);
  GmmOptions options;
  options.num_components = 2;
  GaussianMixture gmm(options);
  ASSERT_TRUE(gmm.Fit(data).ok());
  // Means near (0,0) and (8,8) in some order.
  const la::Matrix& m = gmm.means();
  const bool first_is_origin = std::fabs(m(0, 0)) < 1.0;
  const size_t origin = first_is_origin ? 0 : 1;
  const size_t far = 1 - origin;
  EXPECT_NEAR(m(origin, 0), 0.0, 0.3);
  EXPECT_NEAR(m(far, 0), 8.0, 0.3);
  for (double w : gmm.weights()) EXPECT_NEAR(w, 0.5, 0.1);
}

TEST(Gmm, PredictProbaRowsSumToOne) {
  Rng rng(4);
  la::Matrix data = TwoBlobs(30, rng);
  GaussianMixture gmm(GmmOptions{.num_components = 2});
  ASSERT_TRUE(gmm.Fit(data).ok());
  la::Matrix proba = gmm.PredictProba(data);
  for (size_t i = 0; i < proba.rows(); ++i) {
    double total = 0.0;
    for (size_t c = 0; c < proba.cols(); ++c) total += proba(i, c);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Gmm, MoreComponentsNeverHurtLikelihoodMuch) {
  Rng rng(5);
  la::Matrix data = TwoBlobs(60, rng);
  GaussianMixture g2(GmmOptions{.num_components = 2});
  GaussianMixture g1(GmmOptions{.num_components = 1});
  ASSERT_TRUE(g1.Fit(data).ok());
  ASSERT_TRUE(g2.Fit(data).ok());
  EXPECT_GT(g2.LogLikelihood(data), g1.LogLikelihood(data));
}

TEST(Gmm, BicSelectsTrueComponentCount) {
  Rng rng(6);
  la::Matrix data = TwoBlobs(150, rng);
  auto best = FitGmmWithBic(data, 1, 5);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best.value().num_components(), 2);
}

TEST(Gmm, RejectsTooFewPoints) {
  la::Matrix data(1, 2);
  GaussianMixture gmm(GmmOptions{.num_components = 3});
  EXPECT_FALSE(gmm.Fit(data).ok());
}

TEST(Bic, FormulaMatches) {
  EXPECT_NEAR(BayesianInformationCriterion(-100.0, 5, 100),
              200.0 + 5.0 * std::log(100.0), 1e-12);
  EXPECT_NEAR(AkaikeInformationCriterion(-100.0, 5), 210.0, 1e-12);
}

TEST(Lof, FlagsPlantedOutlier) {
  Rng rng(7);
  la::Matrix data(41, 2);
  for (int i = 0; i < 40; ++i) {
    data(static_cast<size_t>(i), 0) = rng.Gaussian(0.0, 1.0);
    data(static_cast<size_t>(i), 1) = rng.Gaussian(0.0, 1.0);
  }
  data(40, 0) = 25.0;
  data(40, 1) = 25.0;
  auto result = LocalOutlierFactor(data, 5);
  ASSERT_TRUE(result.ok());
  const auto& lof = result.value();
  const size_t argmax = static_cast<size_t>(
      std::max_element(lof.begin(), lof.end()) - lof.begin());
  EXPECT_EQ(argmax, 40u);
  EXPECT_GT(lof[40], 2.0);
}

TEST(Lof, InliersNearOne) {
  Rng rng(8);
  la::Matrix data(60, 2);
  for (size_t i = 0; i < 60; ++i) {
    data(i, 0) = rng.Gaussian(0.0, 1.0);
    data(i, 1) = rng.Gaussian(0.0, 1.0);
  }
  auto result = LocalOutlierFactor(data, 8);
  ASSERT_TRUE(result.ok());
  // Boundary points naturally exceed 1; the bulk (median) should not.
  std::vector<double> lof = result.value();
  std::sort(lof.begin(), lof.end());
  EXPECT_NEAR(lof[lof.size() / 2], 1.0, 0.2);
}

TEST(Lof, RejectsTooFewPoints) {
  la::Matrix data(3, 2);
  EXPECT_FALSE(LocalOutlierFactor(data, 5).ok());
  EXPECT_FALSE(LocalOutlierFactor(data, 0).ok());
}

TEST(MinMaxNormalizeTest, MapsToUnitInterval) {
  auto out = MinMaxNormalize({2.0, 4.0, 6.0});
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.5);
  EXPECT_EQ(out[2], 1.0);
  auto constant = MinMaxNormalize({3.0, 3.0});
  EXPECT_EQ(constant[0], 0.0);
  EXPECT_EQ(constant[1], 0.0);
}

TEST(Tsne, PreservesBlobSeparation) {
  Rng rng(9);
  la::Matrix data = TwoBlobs(25, rng, 12.0);
  TsneOptions options;
  options.iterations = 250;
  auto result = Tsne(data, options);
  ASSERT_TRUE(result.ok());
  const la::Matrix& y = result.value();
  ASSERT_EQ(y.rows(), 50u);
  ASSERT_EQ(y.cols(), 2u);
  // Mean within-blob distance should be far below the between-blob
  // centroid distance.
  auto centroid = [&](size_t lo, size_t hi) {
    std::vector<double> c(2, 0.0);
    for (size_t i = lo; i < hi; ++i) {
      c[0] += y(i, 0);
      c[1] += y(i, 1);
    }
    c[0] /= static_cast<double>(hi - lo);
    c[1] /= static_cast<double>(hi - lo);
    return c;
  };
  const auto ca = centroid(0, 25);
  const auto cb = centroid(25, 50);
  const double between = std::hypot(ca[0] - cb[0], ca[1] - cb[1]);
  double within = 0.0;
  for (size_t i = 0; i < 25; ++i)
    within += std::hypot(y(i, 0) - ca[0], y(i, 1) - ca[1]);
  within /= 25.0;
  EXPECT_GT(between, 2.0 * within);
}

TEST(Tsne, RejectsTinyInput) {
  la::Matrix data(3, 2);
  EXPECT_FALSE(Tsne(data, {}).ok());
}

}  // namespace
}  // namespace subrec::cluster
