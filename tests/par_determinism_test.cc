// Bit-exactness gate for the shared parallel runtime: every parallelized
// fit must produce byte-identical results for SUBREC_NUM_THREADS in
// {1, 2, 4}. The deterministic-chunking contract (fixed chunk grids,
// ordered reductions, chunk-sharded SGD) makes this an equality test, not
// a tolerance test.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ann/hnsw_index.h"
#include "datagen/streaming.h"
#include "cluster/gmm.h"
#include "cluster/lof.h"
#include "cluster/tsne.h"
#include "common/check.h"
#include "common/rng.h"
#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "graph/academic_graph.h"
#include "la/matrix.h"
#include "par/parallel.h"
#include "rec/candidate_sets.h"
#include "rec/nprec.h"
#include "rules/expert_rules.h"
#include "subspace/trainer.h"
#include "subspace/twin_network.h"
#include "text/doc2vec.h"
#include "text/hashed_ngram_encoder.h"
#include "text/word2vec.h"

namespace subrec {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4};

void ExpectBitEqual(const la::Matrix& a, const la::Matrix& b,
                    const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << " at flat index " << i;
}

void ExpectBitEqual(const std::vector<double>& a, const std::vector<double>& b,
                    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << " at index " << i;
}

la::Matrix GaussianData(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  la::Matrix data(n, d);
  for (size_t i = 0; i < data.size(); ++i) data[i] = rng.Gaussian();
  return data;
}

TEST(ParDeterminism, GmmFitBitIdenticalAcrossThreadCounts) {
  const la::Matrix data = GaussianData(150, 6, 31);
  struct Out {
    la::Matrix means, variances, proba;
    std::vector<double> weights;
    double ll = 0.0;
  };
  std::vector<Out> outs;
  for (size_t threads : kThreadCounts) {
    par::ScopedNumThreads scoped(threads);
    cluster::GaussianMixture gmm(
        cluster::GmmOptions{.num_components = 3, .max_iterations = 25});
    ASSERT_TRUE(gmm.Fit(data).ok());
    outs.push_back(Out{gmm.means(), gmm.variances(), gmm.PredictProba(data),
                       gmm.weights(), gmm.LogLikelihood(data)});
  }
  for (size_t i = 1; i < outs.size(); ++i) {
    ExpectBitEqual(outs[0].means, outs[i].means, "gmm means");
    ExpectBitEqual(outs[0].variances, outs[i].variances, "gmm variances");
    ExpectBitEqual(outs[0].proba, outs[i].proba, "gmm responsibilities");
    ExpectBitEqual(outs[0].weights, outs[i].weights, "gmm weights");
    ASSERT_EQ(outs[0].ll, outs[i].ll) << "gmm log-likelihood";
  }
}

TEST(ParDeterminism, LofBitIdenticalAcrossThreadCounts) {
  const la::Matrix data = GaussianData(160, 8, 33);
  std::vector<std::vector<double>> outs;
  for (size_t threads : kThreadCounts) {
    par::ScopedNumThreads scoped(threads);
    auto lof = cluster::LocalOutlierFactor(data, 9);
    ASSERT_TRUE(lof.ok());
    outs.push_back(std::move(lof).value());
  }
  for (size_t i = 1; i < outs.size(); ++i)
    ExpectBitEqual(outs[0], outs[i], "lof scores");
}

TEST(ParDeterminism, TsneBitIdenticalAcrossThreadCounts) {
  const la::Matrix data = GaussianData(48, 6, 35);
  cluster::TsneOptions options;
  options.iterations = 40;
  options.exaggeration_iters = 10;
  std::vector<la::Matrix> outs;
  for (size_t threads : kThreadCounts) {
    par::ScopedNumThreads scoped(threads);
    auto y = cluster::Tsne(data, options);
    ASSERT_TRUE(y.ok());
    outs.push_back(std::move(y).value());
  }
  for (size_t i = 1; i < outs.size(); ++i)
    ExpectBitEqual(outs[0], outs[i], "tsne embedding");
}

std::vector<std::vector<std::string>> SyntheticSentences() {
  // Enough repeated structure for a stable vocabulary, enough sentences to
  // span several SGD chunks per epoch once tokens accumulate.
  const std::vector<std::string> topics = {
      "graph", "embedding", "subspace", "recommendation", "citation",
      "attention", "network", "cluster", "outlier", "paper"};
  Rng rng(71);
  std::vector<std::vector<std::string>> sentences(60);
  for (auto& s : sentences) {
    const size_t len = 6 + rng.UniformInt(6);
    for (size_t i = 0; i < len; ++i)
      s.push_back(topics[rng.UniformInt(topics.size())]);
  }
  return sentences;
}

TEST(ParDeterminism, Word2VecBitIdenticalAcrossThreadCounts) {
  const auto sentences = SyntheticSentences();
  text::Word2VecOptions options;
  options.dim = 16;
  options.epochs = 2;
  std::vector<std::vector<double>> outs;
  for (size_t threads : kThreadCounts) {
    par::ScopedNumThreads scoped(threads);
    text::Word2Vec w2v(options);
    ASSERT_TRUE(w2v.Train(sentences).ok());
    std::vector<double> flat;
    for (const char* word : {"graph", "subspace", "outlier", "paper"}) {
      const auto v = w2v.Embedding(word);
      flat.insert(flat.end(), v.begin(), v.end());
    }
    outs.push_back(std::move(flat));
  }
  for (size_t i = 1; i < outs.size(); ++i)
    ExpectBitEqual(outs[0], outs[i], "word2vec embeddings");
}

TEST(ParDeterminism, Doc2VecBitIdenticalAcrossThreadCounts) {
  const auto documents = SyntheticSentences();
  text::Doc2VecOptions options;
  options.dim = 16;
  options.epochs = 2;
  std::vector<std::vector<double>> outs;
  for (size_t threads : kThreadCounts) {
    par::ScopedNumThreads scoped(threads);
    text::Doc2Vec d2v(options);
    ASSERT_TRUE(d2v.Train(documents).ok());
    std::vector<double> flat;
    for (size_t doc : {size_t{0}, size_t{17}, size_t{59}}) {
      const auto v = d2v.DocumentVector(doc);
      flat.insert(flat.end(), v.begin(), v.end());
    }
    outs.push_back(std::move(flat));
  }
  for (size_t i = 1; i < outs.size(); ++i)
    ExpectBitEqual(outs[0], outs[i], "doc2vec document vectors");
}

/// Shared tiny worlds for the model-level fits (mirrors the
/// subspace_test / rec_test fixtures; built once per suite).
class ParModelWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = datagen::GenerateCorpus(
        datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 4242));
    SUBREC_CHECK(result.ok());
    dataset_ = new datagen::GeneratedDataset(std::move(result).value());

    text::HashedNgramEncoderOptions enc_options;
    enc_options.dim = 24;
    encoder_ = new text::HashedNgramEncoder(enc_options);
    engine_ =
        new rules::ExpertRuleEngine(&dataset_->ccs, encoder_, nullptr);
    features_ = new std::vector<rules::PaperContentFeatures>();
    for (const auto& p : dataset_->corpus.papers) {
      std::vector<int> roles;
      for (const auto& s : p.abstract_sentences) roles.push_back(s.role);
      features_->push_back(engine_->ComputeFeatures(p, roles));
    }

    const auto split = datagen::SplitByYear(dataset_->corpus, 2014);
    graph::GraphBuildOptions graph_options;
    graph_options.citation_year_cutoff = 2014;
    index_ = new graph::GraphIndex(
        graph::BuildAcademicGraph(dataset_->corpus, graph_options));

    subspace_ = new rec::SubspaceEmbeddings();
    text_ = new std::vector<std::vector<double>>();
    for (const auto& p : dataset_->corpus.papers) {
      std::vector<std::vector<double>> subs(3, std::vector<double>(24, 0.0));
      std::vector<int> counts(3, 0);
      for (const auto& s : p.abstract_sentences) {
        const auto v = encoder_->Encode(s.text);
        for (size_t j = 0; j < v.size(); ++j)
          subs[static_cast<size_t>(s.role)][j] += v[j];
        ++counts[static_cast<size_t>(s.role)];
      }
      std::vector<double> fused(24, 0.0);
      for (int k = 0; k < 3; ++k) {
        if (counts[static_cast<size_t>(k)] > 0)
          for (double& x : subs[static_cast<size_t>(k)])
            x /= counts[static_cast<size_t>(k)];
        for (size_t j = 0; j < 24; ++j)
          fused[j] += subs[static_cast<size_t>(k)][j] / 3.0;
      }
      subspace_->push_back(std::move(subs));
      text_->push_back(std::move(fused));
    }

    ctx_ = new rec::RecContext();
    ctx_->corpus = &dataset_->corpus;
    ctx_->graph = index_;
    ctx_->split_year = 2014;
    ctx_->train_papers = split.train;
    ctx_->test_papers = split.test;
    ctx_->paper_text = text_;

    users_ = new std::vector<corpus::AuthorId>(
        datagen::SelectUsers(dataset_->corpus, 2014, 2));
    SUBREC_CHECK(!users_->empty());
    Rng rng(1);
    sets_ = new std::vector<rec::CandidateSet>();
    for (corpus::AuthorId u : *users_)
      sets_->push_back(rec::BuildCandidateSet(*ctx_, u, 20, rng));
  }

  static datagen::GeneratedDataset* dataset_;
  static text::HashedNgramEncoder* encoder_;
  static rules::ExpertRuleEngine* engine_;
  static std::vector<rules::PaperContentFeatures>* features_;
  static graph::GraphIndex* index_;
  static rec::SubspaceEmbeddings* subspace_;
  static std::vector<std::vector<double>>* text_;
  static rec::RecContext* ctx_;
  static std::vector<corpus::AuthorId>* users_;
  static std::vector<rec::CandidateSet>* sets_;
};

datagen::GeneratedDataset* ParModelWorld::dataset_ = nullptr;
text::HashedNgramEncoder* ParModelWorld::encoder_ = nullptr;
rules::ExpertRuleEngine* ParModelWorld::engine_ = nullptr;
std::vector<rules::PaperContentFeatures>* ParModelWorld::features_ = nullptr;
graph::GraphIndex* ParModelWorld::index_ = nullptr;
rec::SubspaceEmbeddings* ParModelWorld::subspace_ = nullptr;
std::vector<std::vector<double>>* ParModelWorld::text_ = nullptr;
rec::RecContext* ParModelWorld::ctx_ = nullptr;
std::vector<corpus::AuthorId>* ParModelWorld::users_ = nullptr;
std::vector<rec::CandidateSet>* ParModelWorld::sets_ = nullptr;

TEST_F(ParModelWorld, SemTrainerBitIdenticalAcrossThreadCounts) {
  subspace::SubspaceEncoderOptions enc;
  enc.input_dim = 24;
  enc.hidden_dim = 8;
  enc.residual = false;
  enc.attention_dim = 6;
  enc.mlp_layers = 2;

  std::vector<subspace::Triplet> triplets;
  const int n = static_cast<int>(features_->size());
  ASSERT_GE(n, 3);
  for (int i = 0; i < 24; ++i) {
    subspace::Triplet t;
    t.anchor = i % n;
    t.positive = (i + 1) % n;
    t.negative = (i + 2) % n;
    t.subspace = i % 3;
    t.gap = 1.0;
    triplets.push_back(t);
  }
  subspace::SemTrainerOptions options;
  options.epochs = 2;
  options.batch_size = 5;  // deliberately not a divisor: partial batches

  struct Out {
    std::vector<la::Matrix> params;
    std::vector<double> epoch_loss;
    double order_accuracy = 0.0;
  };
  std::vector<Out> outs;
  for (size_t threads : kThreadCounts) {
    par::ScopedNumThreads scoped(threads);
    subspace::TwinNetwork net(enc, 7);
    auto stats = TrainTwinNetwork(*features_, triplets, options, &net);
    ASSERT_TRUE(stats.ok());
    Out out;
    for (nn::Parameter* p : net.store()->params())
      out.params.push_back(p->value);
    out.epoch_loss = stats.value().epoch_loss;
    out.order_accuracy = stats.value().final_order_accuracy;
    outs.push_back(std::move(out));
  }
  for (size_t i = 1; i < outs.size(); ++i) {
    ASSERT_EQ(outs[0].params.size(), outs[i].params.size());
    for (size_t pidx = 0; pidx < outs[0].params.size(); ++pidx)
      ExpectBitEqual(outs[0].params[pidx], outs[i].params[pidx],
                     "sem param " + std::to_string(pidx));
    ExpectBitEqual(outs[0].epoch_loss, outs[i].epoch_loss, "sem epoch loss");
    ASSERT_EQ(outs[0].order_accuracy, outs[i].order_accuracy);
  }
}

TEST_F(ParModelWorld, NPRecAndEvalBitIdenticalAcrossThreadCounts) {
  rec::NPRecOptions options;
  options.embed_dim = 12;
  options.neighbor_samples = 4;
  options.epochs = 1;
  options.sampler.max_positives = 150;
  options.sampler.negatives_per_positive = 3;

  struct Out {
    std::vector<double> vectors;
    std::vector<double> epoch_loss;
    double ndcg = 0.0, mrr = 0.0, map = 0.0;
  };
  std::vector<Out> outs;
  for (size_t threads : kThreadCounts) {
    par::ScopedNumThreads scoped(threads);
    rec::NPRec model(options, subspace_);
    ASSERT_TRUE(model.Fit(*ctx_).ok());
    Out out;
    for (size_t p = 0; p < ctx_->corpus->papers.size(); p += 7) {
      const auto& vi =
          model.PaperInterestVector(static_cast<corpus::PaperId>(p));
      const auto& vf =
          model.PaperInfluenceVector(static_cast<corpus::PaperId>(p));
      out.vectors.insert(out.vectors.end(), vi.begin(), vi.end());
      out.vectors.insert(out.vectors.end(), vf.begin(), vf.end());
    }
    out.epoch_loss = model.train_stats().epoch_loss;
    const rec::RecEvalResult eval =
        rec::EvaluateRecommender(*ctx_, model, *sets_, 20);
    out.ndcg = eval.ndcg;
    out.mrr = eval.mrr;
    out.map = eval.map;
    outs.push_back(std::move(out));
  }
  for (size_t i = 1; i < outs.size(); ++i) {
    ExpectBitEqual(outs[0].vectors, outs[i].vectors, "nprec paper vectors");
    ExpectBitEqual(outs[0].epoch_loss, outs[i].epoch_loss,
                   "nprec epoch loss");
    ASSERT_EQ(outs[0].ndcg, outs[i].ndcg) << "eval ndcg";
    ASSERT_EQ(outs[0].mrr, outs[i].mrr) << "eval mrr";
    ASSERT_EQ(outs[0].map, outs[i].map) << "eval map";
  }
}

TEST(ParDeterminism, HnswBuildBitIdenticalAcrossThreadCounts) {
  // The ANN graph ships inside snapshots, so its build must satisfy the
  // same contract as every fit here: Serialize() is a pure function of
  // (ids, vectors, options), for any SUBREC_NUM_THREADS. The size spans
  // several doubling batches so parallel plan/commit really kicks in.
  constexpr size_t kN = 700;
  constexpr size_t kDim = 6;
  Rng rng(77);
  std::vector<int32_t> ids;
  std::vector<double> vectors;
  for (size_t i = 0; i < kN; ++i) {
    ids.push_back(static_cast<int32_t>(i));
    for (size_t d = 0; d < kDim; ++d)
      vectors.push_back(rng.Gaussian(0.0, 1.0));
  }
  std::vector<std::string> serialized;
  for (size_t threads : kThreadCounts) {
    par::ScopedNumThreads scoped(threads);
    auto built = ann::HnswIndex::Build(ids, vectors, kDim, {});
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    serialized.push_back(built.value()->Serialize());
  }
  for (size_t i = 1; i < serialized.size(); ++i)
    ASSERT_EQ(serialized[0], serialized[i])
        << "hnsw graph differs at " << kThreadCounts[i] << " threads";

  // And across two builds at the same thread count (no hidden state).
  auto rebuilt = ann::HnswIndex::Build(ids, vectors, kDim, {});
  ASSERT_TRUE(rebuilt.ok());
  ASSERT_EQ(rebuilt.value()->Serialize(), serialized[0]);
}

TEST(ParDeterminism, HnswStreamingPresetBitIdenticalAcrossThreadCounts) {
  // Same determinism gate, but over the bench corpus itself: the streaming
  // generator's smoke preset at the bench seed, indexing the new-pool
  // influence vectors exactly as bench/ann_recall does (dim 48, several
  // doubling batches, realistic cluster structure). Set
  // SUBREC_ANN_DETERMINISM_FULL=1 to run the 1e5-paper full preset in a
  // same-host soak; CI stays on smoke.
  const char* env = std::getenv("SUBREC_ANN_DETERMINISM_FULL");
  const bool full = env != nullptr && env[0] == '1';
  auto created = datagen::StreamingCorpusGenerator::Create(
      datagen::AnnRecallPreset(full ? datagen::AnnCorpusScale::kFull
                                    : datagen::AnnCorpusScale::kSmoke,
                               909));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  datagen::StreamingCorpusGenerator gen = std::move(created).value();
  const size_t dim = gen.options().embedding_dim;
  std::vector<int32_t> ids;
  std::vector<double> vectors;
  std::vector<datagen::StreamedPaper> batch;
  while (gen.NextBatch(512, &batch) > 0) {
    for (const datagen::StreamedPaper& paper : batch) {
      if (paper.year <= gen.split_year()) continue;  // new-pool suffix only
      ids.push_back(paper.id);
      vectors.insert(vectors.end(), paper.influence.begin(),
                     paper.influence.end());
    }
  }
  ASSERT_GT(ids.size(), 1000u);

  std::vector<std::string> serialized;
  for (size_t threads : kThreadCounts) {
    par::ScopedNumThreads scoped(threads);
    auto built = ann::HnswIndex::Build(ids, vectors, dim, {});
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    serialized.push_back(built.value()->Serialize());
  }
  for (size_t i = 1; i < serialized.size(); ++i)
    ASSERT_EQ(serialized[0], serialized[i])
        << "hnsw graph differs at " << kThreadCounts[i] << " threads";

  // The legacy A/B baseline must build the identical graph on this corpus
  // — otherwise ann.build.speedup_vs_baseline compares different work.
  ann::HnswOptions legacy;
  legacy.legacy_build = true;
  auto baseline = ann::HnswIndex::Build(ids, vectors, dim, legacy);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline.value()->Serialize(), serialized[0])
      << "legacy_build diverges from the arena build";
}

}  // namespace
}  // namespace subrec

