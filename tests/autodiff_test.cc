#include <gtest/gtest.h>

#include "autodiff/grad_check.h"
#include "autodiff/tape.h"
#include "autodiff/tape_pool.h"
#include "common/rng.h"
#include "la/ops.h"

namespace subrec::autodiff {
namespace {

constexpr double kTol = 1e-6;

// Builds a ScalarFn from a tape program over the parameter list.
ScalarFn MakeFn(
    const std::function<VarId(Tape*, const std::vector<VarId>&)>& program) {
  return [program](const std::vector<la::Matrix>& params,
                   std::vector<la::Matrix>* grads) {
    Tape tape;
    std::vector<VarId> leaves;
    leaves.reserve(params.size());
    for (const auto& p : params) leaves.push_back(tape.Input(p, true));
    VarId loss = program(&tape, leaves);
    if (grads != nullptr) {
      tape.Backward(loss);
      grads->clear();
      for (VarId leaf : leaves) grads->push_back(tape.grad(leaf));
    }
    return tape.value(loss)(0, 0);
  };
}

TEST(Tape, ForwardValuesMatchPlainOps) {
  Tape tape;
  la::Matrix a = {{1, 2}, {3, 4}};
  la::Matrix b = {{5, 6}, {7, 8}};
  VarId va = tape.Constant(a);
  VarId vb = tape.Constant(b);
  EXPECT_EQ(tape.value(tape.MatMul(va, vb))(0, 0), 19.0);
  EXPECT_EQ(tape.value(tape.Add(va, vb))(1, 1), 12.0);
  EXPECT_EQ(tape.value(tape.Sum(va))(0, 0), 10.0);
  EXPECT_EQ(tape.value(tape.SumSquares(vb))(0, 0), 174.0);
  EXPECT_EQ(tape.value(tape.Transpose(va))(0, 1), 3.0);
}

TEST(GradCheck, MatMul) {
  Rng rng(1);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    return t->Sum(t->MatMul(p[0], p[1]));
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(3, 4, rng),
                               la::Matrix::Random(4, 2, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, MatMulTransB) {
  Rng rng(2);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    return t->Sum(t->MatMulTransB(p[0], p[1]));
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(3, 4, rng),
                               la::Matrix::Random(5, 4, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, ElementwiseChain) {
  Rng rng(3);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    VarId x = t->Mul(p[0], p[1]);
    x = t->Sub(x, t->Scale(p[0], 0.3));
    return t->SumSquares(x);
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(3, 3, rng),
                               la::Matrix::Random(3, 3, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, Activations) {
  Rng rng(4);
  for (int which = 0; which < 3; ++which) {
    auto fn = MakeFn([which](Tape* t, const std::vector<VarId>& p) {
      VarId y = which == 0   ? t->Tanh(p[0])
                : which == 1 ? t->Sigmoid(p[0])
                             : t->Relu(p[0]);
      return t->SumSquares(y);
    });
    // Keep ReLU inputs away from the kink.
    la::Matrix x = la::Matrix::Random(4, 3, rng, 0.1, 2.0);
    auto r = CheckGradients(fn, {x});
    EXPECT_LT(r.max_rel_error, kTol) << "activation " << which;
  }
}

TEST(GradCheck, RowSoftmaxAndMean) {
  Rng rng(5);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    VarId s = t->RowSoftmax(p[0]);
    VarId m = t->RowMean(s);
    return t->SumSquares(m);
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(4, 5, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, AddRowBroadcast) {
  Rng rng(6);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    return t->SumSquares(t->AddRowBroadcast(p[0], p[1]));
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(4, 3, rng),
                               la::Matrix::Random(1, 3, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, ConcatRowsAndCols) {
  Rng rng(7);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    VarId rows = t->ConcatRows({p[0], p[1]});
    VarId cols = t->ConcatCols({rows, t->Scale(rows, 2.0)});
    return t->SumSquares(cols);
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(2, 3, rng),
                               la::Matrix::Random(4, 3, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, Transpose) {
  Rng rng(8);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    return t->Sum(t->MatMul(t->Transpose(p[0]), p[0]));
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(3, 2, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, SigmoidBce) {
  Rng rng(9);
  la::Matrix targets(2, 3);
  targets(0, 0) = 1.0;
  targets(1, 2) = 1.0;
  auto fn = MakeFn([targets](Tape* t, const std::vector<VarId>& p) {
    return t->SigmoidBce(p[0], targets);
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(2, 3, rng, -2, 2)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, TwoLayerMlpComposite) {
  Rng rng(10);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    // x fixed inside: use p[3] as input treated as trainable too.
    VarId h = t->Tanh(t->AddRowBroadcast(t->MatMul(p[3], p[0]), p[1]));
    VarId out = t->MatMul(h, p[2]);
    return t->SumSquares(out);
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(4, 6, rng),   // W1
                               la::Matrix::Random(1, 6, rng),   // b1
                               la::Matrix::Random(6, 2, rng),   // W2
                               la::Matrix::Random(3, 4, rng)});  // x
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, AttentionPoolingComposite) {
  // The exact pooling structure used by the subspace encoder: softmax
  // attention over rows followed by a weighted sum.
  Rng rng(11);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    VarId proj = t->Tanh(t->MatMul(p[0], p[1]));       // n x a
    VarId scores = t->MatMul(proj, p[2]);              // n x 1
    VarId weights = t->RowSoftmax(t->Transpose(scores));  // 1 x n
    VarId pooled = t->MatMul(weights, p[0]);           // 1 x d
    return t->SumSquares(pooled);
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(5, 4, rng),
                               la::Matrix::Random(4, 3, rng),
                               la::Matrix::Random(3, 1, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

// Direct (single-op) finite-difference tests: the composites above could
// mask a backward rule whose error cancels through the surrounding ops, so
// each rewritten opcode also gets checked in isolation.

TEST(GradCheck, ConcatRowsDirect) {
  Rng rng(12);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    return t->SumSquares(t->ConcatRows({p[0], p[1], p[2]}));
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(1, 3, rng),
                               la::Matrix::Random(4, 3, rng),
                               la::Matrix::Random(2, 3, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, ConcatColsDirect) {
  Rng rng(13);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    return t->SumSquares(t->ConcatCols({p[0], p[1], p[2]}));
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(3, 1, rng),
                               la::Matrix::Random(3, 4, rng),
                               la::Matrix::Random(3, 2, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, RowSoftmaxDirect) {
  Rng rng(14);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    return t->SumSquares(t->RowSoftmax(p[0]));
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(3, 5, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, RowMeanDirect) {
  Rng rng(15);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    return t->SumSquares(t->RowMean(p[0]));
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(5, 4, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, TransposeDirect) {
  Rng rng(16);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    return t->SumSquares(t->Transpose(p[0]));
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(2, 5, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, AddRowBroadcastDirect) {
  Rng rng(17);
  auto fn = MakeFn([](Tape* t, const std::vector<VarId>& p) {
    return t->SumSquares(t->AddRowBroadcast(p[0], p[1]));
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(6, 2, rng),
                               la::Matrix::Random(1, 2, rng)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(GradCheck, SigmoidBceDirect) {
  Rng rng(18);
  la::Matrix targets(3, 2);
  targets(0, 1) = 1.0;
  targets(2, 0) = 1.0;
  auto fn = MakeFn([targets](Tape* t, const std::vector<VarId>& p) {
    return t->SigmoidBce(p[0], targets);
  });
  auto r = CheckGradients(fn, {la::Matrix::Random(3, 2, rng, -3, 3)});
  EXPECT_LT(r.max_rel_error, kTol);
}

TEST(Tape, ConstantGetsNoGradient) {
  Tape tape;
  VarId c = tape.Constant(la::Matrix(2, 2, 1.0));
  VarId x = tape.Input(la::Matrix(2, 2, 3.0), true);
  VarId loss = tape.Sum(tape.Mul(c, x));
  tape.Backward(loss);
  EXPECT_TRUE(tape.grad(c).empty());
  EXPECT_EQ(tape.grad(x)(0, 0), 1.0);
}

TEST(Tape, GradientAccumulatesAcrossReuse) {
  Tape tape;
  VarId x = tape.Input(la::Matrix(1, 1, 2.0), true);
  // loss = x*x -> dloss/dx = 2x = 4.
  VarId loss = tape.Sum(tape.Mul(x, x));
  tape.Backward(loss);
  EXPECT_NEAR(tape.grad(x)(0, 0), 4.0, 1e-12);
}

TEST(Tape, ResetInvalidatesNodes) {
  Tape tape;
  tape.Input(la::Matrix(1, 1), true);
  EXPECT_EQ(tape.size(), 1u);
  tape.Reset();
  EXPECT_EQ(tape.size(), 0u);
}

TEST(Tape, ArenaReusesSlabsAcrossReset) {
  Tape tape;
  const auto build = [&tape]() {
    VarId x = tape.Input(la::Matrix(8, 8, 0.01), true);
    VarId y = tape.Tanh(tape.MatMul(x, x));
    VarId loss = tape.SumSquares(y);
    tape.Backward(loss);
    return tape.grad(x)(0, 0);
  };
  const double g1 = build();
  tape.Reset();
  const size_t warm_bytes = tape.bytes_reserved();
  const uint64_t hits_before = tape.slab_reuse_hits();
  EXPECT_GT(warm_bytes, 0u);
  // The second identical pass must recycle every slab: reuse hits go up,
  // the reserved footprint does not, and the result is bitwise unchanged.
  const double g2 = build();
  tape.Reset();
  EXPECT_GT(tape.slab_reuse_hits(), hits_before);
  EXPECT_EQ(tape.bytes_reserved(), warm_bytes);
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(tape.nodes_built(), 8u);  // 4 nodes per pass, 2 passes
}

TEST(Tape, InputRefReadsExternalStorageWithoutCopy) {
  la::Matrix w(2, 2, 1.5);
  Tape tape;
  VarId x = tape.InputRef(&w, true);
  EXPECT_EQ(&tape.value(x), &w);
  VarId loss = tape.SumSquares(x);
  tape.Backward(loss);
  EXPECT_EQ(tape.grad(x)(0, 0), 3.0);  // d/dx sum(x^2) = 2x
  // A rebuild observes the pointee's current contents.
  tape.Reset();
  w.Fill(2.0);
  VarId x2 = tape.InputRef(&w, true);
  EXPECT_EQ(tape.value(x2)(1, 1), 2.0);
}

TEST(Tape, ConstantRefGetsNoGradient) {
  la::Matrix c(2, 2, 1.0);
  Tape tape;
  VarId vc = tape.ConstantRef(&c);
  VarId x = tape.Input(la::Matrix(2, 2, 3.0), true);
  VarId loss = tape.Sum(tape.Mul(vc, x));
  tape.Backward(loss);
  EXPECT_TRUE(tape.grad(vc).empty());
  EXPECT_EQ(tape.grad(x)(0, 0), 1.0);
}

TEST(TapePool, RecyclesReleasedTapes) {
  TapePool pool;
  std::unique_ptr<Tape> t1 = pool.Acquire();
  t1->Input(la::Matrix(4, 4, 1.0), true);
  Tape* raw = t1.get();
  pool.Release(std::move(t1));
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_GT(pool.bytes_reserved(), 0u);
  std::unique_ptr<Tape> t2 = pool.Acquire();
  EXPECT_EQ(t2.get(), raw);          // same arena comes back
  EXPECT_EQ(t2->size(), 0u);         // ... already reset
  EXPECT_GT(t2->bytes_reserved(), 0u);  // ... with its slabs intact
  EXPECT_EQ(pool.idle(), 0u);
  pool.Release(std::move(t2));
  pool.Release(nullptr);  // ignored
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(TapePool, LegacyModeDisablesReuse) {
  SetTapeLegacyMode(true);
  TapePool pool;
  pool.Release(pool.Acquire());
  EXPECT_EQ(pool.idle(), 0u);
  SetTapeLegacyMode(false);
}

}  // namespace
}  // namespace subrec::autodiff
