#include <gtest/gtest.h>

#include <cmath>

#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "la/ops.h"
#include "rules/expert_rules.h"
#include "subspace/sem_model.h"
#include "subspace/subspace_encoder.h"
#include "subspace/trainer.h"
#include "subspace/triplet_miner.h"
#include "subspace/twin_network.h"
#include "text/hashed_ngram_encoder.h"

namespace subrec::subspace {
namespace {

SubspaceEncoderOptions TinyEncoderOptions() {
  SubspaceEncoderOptions options;
  options.input_dim = 24;
  options.hidden_dim = 8;
  options.residual = false;
  options.attention_dim = 6;
  options.mlp_layers = 2;
  return options;
}

std::vector<std::vector<double>> RandomSentences(int n, size_t dim, Rng& rng) {
  std::vector<std::vector<double>> out;
  for (int i = 0; i < n; ++i) {
    std::vector<double> v(dim);
    for (double& x : v) x = rng.Gaussian(0.0, 1.0);
    la::NormalizeL2(v);
    out.push_back(std::move(v));
  }
  return out;
}

TEST(SubspaceEncoder, OutputShapes) {
  nn::ParameterStore store;
  Rng rng(1);
  SubspaceEncoderNet net(&store, TinyEncoderOptions(), rng);
  EXPECT_EQ(net.output_dim(), 16u);

  autodiff::Tape tape;
  nn::TapeBinding binding(&tape);
  Rng data_rng(2);
  auto sentences = RandomSentences(5, 24, data_rng);
  std::vector<int> roles = {0, 0, 1, 2, 2};
  const auto out = net.Forward(&tape, &binding, sentences, roles);
  ASSERT_EQ(out.size(), 3u);
  for (autodiff::VarId id : out) {
    EXPECT_EQ(tape.value(id).rows(), 1u);
    EXPECT_EQ(tape.value(id).cols(), 16u);
  }
}

TEST(SubspaceEncoder, HandlesEmptySubspace) {
  nn::ParameterStore store;
  Rng rng(3);
  SubspaceEncoderNet net(&store, TinyEncoderOptions(), rng);
  autodiff::Tape tape;
  nn::TapeBinding binding(&tape);
  Rng data_rng(4);
  auto sentences = RandomSentences(2, 24, data_rng);
  std::vector<int> roles = {0, 0};  // no method/result sentences
  const auto out = net.Forward(&tape, &binding, sentences, roles);
  ASSERT_EQ(out.size(), 3u);
  for (autodiff::VarId id : out) {
    for (size_t i = 0; i < tape.value(id).size(); ++i)
      EXPECT_TRUE(std::isfinite(tape.value(id)[i]));
  }
}

TEST(SubspaceEncoder, SubspaceChangeOnlyMovesThatEmbeddingMost) {
  // Changing only the method sentences must change the method subspace
  // embedding's pooled half while background/result pooled halves, which
  // only see their own sentences, stay identical.
  nn::ParameterStore store;
  Rng rng(5);
  SubspaceEncoderNet net(&store, TinyEncoderOptions(), rng);

  Rng data_rng(6);
  auto sentences = RandomSentences(6, 24, data_rng);
  std::vector<int> roles = {0, 0, 1, 1, 2, 2};
  auto altered = sentences;
  altered[2] = RandomSentences(1, 24, data_rng)[0];
  altered[3] = RandomSentences(1, 24, data_rng)[0];

  autodiff::Tape t1, t2;
  nn::TapeBinding b1(&t1), b2(&t2);
  const auto e1 = net.Forward(&t1, &b1, sentences, roles);
  const auto e2 = net.Forward(&t2, &b2, altered, roles);

  const size_t half = 8;  // hidden_dim: first half is the pooled c_hat
  auto pooled_delta = [&](int k) {
    double s = 0.0;
    for (size_t j = 0; j < half; ++j) {
      const double d = t1.value(e1[static_cast<size_t>(k)])(0, j) -
                       t2.value(e2[static_cast<size_t>(k)])(0, j);
      s += d * d;
    }
    return std::sqrt(s);
  };
  EXPECT_NEAR(pooled_delta(0), 0.0, 1e-12);
  EXPECT_NEAR(pooled_delta(2), 0.0, 1e-12);
  EXPECT_GT(pooled_delta(1), 1e-4);
}

TEST(TwinNetworkTest, DistanceIsNegativeInnerProduct) {
  TwinNetwork net(TinyEncoderOptions(), 7);
  rules::PaperContentFeatures fa, fb;
  Rng rng(8);
  fa.sentence_vectors = RandomSentences(3, 24, rng);
  fa.roles = {0, 1, 2};
  fb.sentence_vectors = RandomSentences(3, 24, rng);
  fb.roles = {0, 1, 2};
  const auto ea = net.Embed(fa);
  const auto eb = net.Embed(fb);
  for (int k = 0; k < 3; ++k) {
    const double expected = -la::Dot(ea[static_cast<size_t>(k)],
                                     eb[static_cast<size_t>(k)]);
    EXPECT_NEAR(net.Distance(fa, fb, k), expected, 1e-9);
  }
}

/// Shared tiny fixture: generated corpus, features, rule engine.
class SemPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = datagen::GenerateCorpus(
        datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 99));
    SUBREC_CHECK(result.ok());
    dataset_ = new datagen::GeneratedDataset(std::move(result).value());
    encoder_ = new text::HashedNgramEncoder([] {
      text::HashedNgramEncoderOptions o;
      o.dim = 24;
      return o;
    }());
    engine_ = new rules::ExpertRuleEngine(&dataset_->ccs, encoder_, nullptr);
    features_ = new std::vector<rules::PaperContentFeatures>();
    for (const auto& p : dataset_->corpus.papers) {
      std::vector<int> roles;
      for (const auto& s : p.abstract_sentences) roles.push_back(s.role);
      features_->push_back(engine_->ComputeFeatures(p, roles));
    }
  }

  static datagen::GeneratedDataset* dataset_;
  static text::HashedNgramEncoder* encoder_;
  static rules::ExpertRuleEngine* engine_;
  static std::vector<rules::PaperContentFeatures>* features_;
};

datagen::GeneratedDataset* SemPipelineTest::dataset_ = nullptr;
text::HashedNgramEncoder* SemPipelineTest::encoder_ = nullptr;
rules::ExpertRuleEngine* SemPipelineTest::engine_ = nullptr;
std::vector<rules::PaperContentFeatures>* SemPipelineTest::features_ = nullptr;

TEST_F(SemPipelineTest, MinerProducesOrderedTriplets) {
  std::vector<corpus::PaperId> ids;
  for (int i = 0; i < 120; ++i) ids.push_back(i);
  rules::RuleFusion fusion(3);
  ASSERT_TRUE(CalibrateFusion(dataset_->corpus, ids, *features_, *engine_,
                              200, 1, &fusion)
                  .ok());
  TripletMinerOptions options;
  options.num_candidates = 300;
  const auto triplets = MineTriplets(dataset_->corpus, ids, *features_,
                                     *engine_, fusion, options);
  ASSERT_GT(triplets.size(), 50u);
  for (const Triplet& t : triplets) {
    EXPECT_NE(t.anchor, t.positive);
    EXPECT_NE(t.anchor, t.negative);
    EXPECT_GE(t.gap, options.min_gap);
    EXPECT_GE(t.subspace, 0);
    EXPECT_LT(t.subspace, 3);
    // The miner's invariant: the positive pair is the more different one
    // under the fused rules.
    const auto sp = engine_->AllScores(
        dataset_->corpus.paper(t.anchor),
        (*features_)[static_cast<size_t>(t.anchor)],
        dataset_->corpus.paper(t.positive),
        (*features_)[static_cast<size_t>(t.positive)]);
    const auto sn = engine_->AllScores(
        dataset_->corpus.paper(t.anchor),
        (*features_)[static_cast<size_t>(t.anchor)],
        dataset_->corpus.paper(t.negative),
        (*features_)[static_cast<size_t>(t.negative)]);
    EXPECT_GT(fusion.Fuse(sp, t.subspace), fusion.Fuse(sn, t.subspace));
  }
}

TEST_F(SemPipelineTest, TwinNetworkLearnsRuleOrdering) {
  std::vector<corpus::PaperId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(i);

  SemModelOptions options;
  options.encoder = TinyEncoderOptions();
  options.miner.num_candidates = 250;
  options.trainer.epochs = 2;
  options.calibration_pairs = 150;
  SemModel model(options);
  auto stats = model.Fit(dataset_->corpus, ids, *features_, *engine_);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(model.fitted());
  // The twin network should order most training triplets correctly.
  EXPECT_GT(stats.value().final_order_accuracy, 0.75);
  // Loss decreases over epochs.
  ASSERT_EQ(stats.value().epoch_loss.size(), 2u);
  EXPECT_LT(stats.value().epoch_loss.back(),
            stats.value().epoch_loss.front() + 1e-9);
}

TEST_F(SemPipelineTest, EmbeddingMatrixShape) {
  SemModelOptions options;
  options.encoder = TinyEncoderOptions();
  SemModel model(options);
  std::vector<corpus::PaperId> ids = {0, 1, 2, 3};
  const la::Matrix m = model.SubspaceEmbeddingMatrix(*features_, ids, 1);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), model.network()->embedding_dim());
}

TEST(Trainer, RejectsEmptyTriplets) {
  TwinNetwork net(TinyEncoderOptions(), 11);
  auto result = TrainTwinNetwork({}, {}, {}, &net);
  EXPECT_FALSE(result.ok());
}

TEST(Trainer, RejectsOutOfRangeIds) {
  TwinNetwork net(TinyEncoderOptions(), 12);
  std::vector<rules::PaperContentFeatures> features(2);
  Triplet t{0, 1, 5, 0, 1.0};  // id 5 out of range
  auto result = TrainTwinNetwork(features, {t}, {}, &net);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace subrec::subspace
