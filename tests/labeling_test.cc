#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/abstract_generator.h"
#include "datagen/discipline.h"
#include "labeling/crf.h"
#include "labeling/features.h"
#include "labeling/trainer.h"

namespace subrec::labeling {
namespace {

TEST(FeatureExtractor, BucketsInRange) {
  FeatureExtractor fx(128);
  auto feats = fx.Extract("we propose a novel graph model", 1, 5);
  EXPECT_FALSE(feats.empty());
  for (size_t f : feats) EXPECT_LT(f, 128u);
}

TEST(FeatureExtractor, PositionChangesFeatures) {
  FeatureExtractor fx(1 << 12);
  auto first = fx.Extract("same sentence", 0, 4);
  auto last = fx.Extract("same sentence", 3, 4);
  EXPECT_NE(first, last);
}

TEST(Crf, DecodeFollowsEmissionWeights) {
  LinearChainCrf crf(2, 4);
  crf.emit(0, 0) = 2.0;  // feature 0 -> label 0
  crf.emit(1, 1) = 2.0;  // feature 1 -> label 1
  std::vector<std::vector<size_t>> feats = {{0}, {1}, {0}};
  EXPECT_EQ(crf.Decode(feats), (std::vector<int>{0, 1, 0}));
}

TEST(Crf, TransitionsBreakEmissionTies) {
  LinearChainCrf crf(2, 2);
  // No emission signal; strong self-transition for label 1 plus start bias.
  crf.start(1) = 1.0;
  crf.trans(1, 1) = 2.0;
  crf.trans(0, 0) = 0.0;
  std::vector<std::vector<size_t>> feats = {{0}, {0}, {0}};
  EXPECT_EQ(crf.Decode(feats), (std::vector<int>{1, 1, 1}));
}

TEST(Crf, SequenceScoreMatchesManualSum) {
  LinearChainCrf crf(2, 3);
  crf.start(1) = 0.5;
  crf.emit(1, 2) = 1.5;
  crf.emit(0, 0) = 0.75;
  crf.trans(1, 0) = 0.25;
  std::vector<std::vector<size_t>> feats = {{2}, {0}};
  const double score = crf.SequenceScore(feats, {1, 0});
  EXPECT_NEAR(score, 0.5 + 1.5 + 0.25 + 0.75, 1e-12);
}

TEST(Crf, EmptySequence) {
  LinearChainCrf crf(3, 4);
  EXPECT_TRUE(crf.Decode({}).empty());
  EXPECT_EQ(crf.SequenceScore({}, {}), 0.0);
}

TEST(Perceptron, LearnsSimpleRule) {
  // Feature 0 => label 0, feature 1 => label 1, with a positional twist:
  // the last position is always label 2 signalled by feature 2.
  std::vector<SequenceExample> examples;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    SequenceExample ex;
    const int len = 3 + static_cast<int>(rng.UniformInt(3));
    for (int t = 0; t < len; ++t) {
      if (t == len - 1) {
        ex.features.push_back({2});
        ex.labels.push_back(2);
      } else if (rng.Bernoulli(0.5)) {
        ex.features.push_back({0});
        ex.labels.push_back(0);
      } else {
        ex.features.push_back({1});
        ex.labels.push_back(1);
      }
    }
    examples.push_back(std::move(ex));
  }
  LinearChainCrf crf(3, 8);
  TrainerOptions options;
  options.epochs = 5;
  ASSERT_TRUE(TrainAveragedPerceptron(examples, options, &crf).ok());
  EXPECT_GT(SequenceAccuracy(crf, examples), 0.99);
}

TEST(Perceptron, RejectsBadLabels) {
  LinearChainCrf crf(2, 4);
  SequenceExample ex;
  ex.features = {{0}};
  ex.labels = {5};  // out of range
  EXPECT_FALSE(TrainAveragedPerceptron({ex}, {}, &crf).ok());
}

TEST(Perceptron, RejectsEmptyTrainingSet) {
  LinearChainCrf crf(2, 4);
  EXPECT_FALSE(TrainAveragedPerceptron({}, {}, &crf).ok());
}

/// Generates role-labeled abstracts with the synthetic generator — the
/// same data path the experiments use.
void MakeAbstracts(int count, uint64_t seed,
                   std::vector<std::vector<std::string>>* abstracts,
                   std::vector<std::vector<int>>* roles) {
  datagen::SyntheticVocabulary vocab(1, 4);
  datagen::AbstractGenerator gen;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const std::array<double, 3> innovation = {0.3, 0.3, 0.3};
    const auto sentences =
        gen.Generate(vocab, 0, static_cast<int>(rng.UniformInt(4)),
                     innovation, i, rng);
    std::vector<std::string> texts;
    std::vector<int> role_row;
    for (const auto& s : sentences) {
      texts.push_back(s.text);
      role_row.push_back(s.role);
    }
    abstracts->push_back(std::move(texts));
    roles->push_back(std::move(role_row));
  }
}

TEST(SentenceLabeler, LearnsSubspaceRolesOnSyntheticAbstracts) {
  std::vector<std::vector<std::string>> train_abs, test_abs;
  std::vector<std::vector<int>> train_roles, test_roles;
  MakeAbstracts(150, 11, &train_abs, &train_roles);
  MakeAbstracts(50, 12, &test_abs, &test_roles);

  SentenceLabeler labeler(3);
  ASSERT_TRUE(labeler.Train(train_abs, train_roles).ok());
  EXPECT_TRUE(labeler.trained());
  // Cue fidelity is 0.92, so ~90% accuracy is attainable; demand well
  // above chance (1/3).
  EXPECT_GT(labeler.Evaluate(test_abs, test_roles), 0.8);
}

TEST(SentenceLabeler, LabelReturnsOneRolePerSentence) {
  std::vector<std::vector<std::string>> abs;
  std::vector<std::vector<int>> roles;
  MakeAbstracts(60, 13, &abs, &roles);
  SentenceLabeler labeler(3);
  ASSERT_TRUE(labeler.Train(abs, roles).ok());
  const auto out = labeler.Label(abs[0]);
  EXPECT_EQ(out.size(), abs[0].size());
  for (int r : out) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 3);
  }
}

TEST(SentenceLabeler, TrainRejectsMismatchedInputs) {
  SentenceLabeler labeler(3);
  EXPECT_FALSE(labeler.Train({{"a"}}, {}).ok());
}

}  // namespace
}  // namespace subrec::labeling
