// Verifies the SUBREC_NUMERIC_CHECKS guard layer: a NaN injected at a hot
// joint (optimizer step, autodiff backward) aborts with a labeled message
// instead of silently poisoning downstream metrics.
#include <cmath>
#include <limits>
#include <vector>

#include "autodiff/tape.h"
#include "gtest/gtest.h"
#include "la/check_finite.h"
#include "la/matrix.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"

namespace {

using subrec::la::Matrix;

TEST(CheckFiniteTest, AllFiniteDetectsNanAndInf) {
  Matrix m(2, 2, 1.0);
  EXPECT_TRUE(subrec::la::AllFinite(m));
  m(1, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(subrec::la::AllFinite(m));
  m(1, 0) = std::nan("");
  EXPECT_FALSE(subrec::la::AllFinite(m));
  EXPECT_TRUE(subrec::la::AllFinite(std::vector<double>{0.0, -1.5}));
  EXPECT_FALSE(
      subrec::la::AllFinite(std::vector<double>{0.0, std::nan("")}));
}

TEST(CheckFiniteDeathTest, ReportsLabelAndPosition) {
  Matrix m(2, 3);
  m(1, 2) = std::nan("");
  EXPECT_DEATH(subrec::la::CheckFinite(m, "unit test tensor"),
               "unit test tensor.*\\(1,2\\)");
  EXPECT_DEATH(subrec::la::CheckFinite(std::nan(""), "unit test scalar"),
               "unit test scalar");
}

#if defined(SUBREC_NUMERIC_CHECKS) && SUBREC_NUMERIC_CHECKS

TEST(NumericGuardDeathTest, OptimizerStepCatchesNanGradient) {
  subrec::nn::ParameterStore store;
  subrec::nn::Parameter* p = store.Create("w", Matrix(2, 2, 0.5));
  p->grad(0, 1) = std::nan("");
  subrec::nn::Sgd sgd(0.1);
  EXPECT_DEATH(sgd.Step(store.params()), "optimizer step gradient");
}

TEST(NumericGuardDeathTest, OptimizerStepCatchesInfParameter) {
  subrec::nn::ParameterStore store;
  subrec::nn::Parameter* p = store.Create("w", Matrix(1, 2, 1.0));
  // A huge gradient with a huge learning rate overflows the parameter to
  // inf inside Update(); the post-update guard must catch it.
  p->grad(0, 0) = std::numeric_limits<double>::max();
  subrec::nn::Sgd sgd(std::numeric_limits<double>::max());
  EXPECT_DEATH(sgd.Step(store.params()), "optimizer step parameter");
}

TEST(NumericGuardDeathTest, BackwardCatchesNanLoss) {
  subrec::autodiff::Tape tape;
  Matrix bad(1, 1);
  bad(0, 0) = std::nan("");
  const subrec::autodiff::VarId loss =
      tape.Input(bad, /*requires_grad=*/true);
  EXPECT_DEATH(tape.Backward(loss), "autodiff backward root loss");
}

#else

TEST(NumericGuardTest, GuardsCompiledOutLeaveNanUntouched) {
  subrec::nn::ParameterStore store;
  subrec::nn::Parameter* p = store.Create("w", Matrix(1, 1, 0.5));
  p->grad(0, 0) = std::nan("");
  subrec::nn::Sgd sgd(0.1);
  sgd.Step(store.params());
  EXPECT_TRUE(std::isnan(p->value(0, 0)));
}

#endif  // SUBREC_NUMERIC_CHECKS

}  // namespace
