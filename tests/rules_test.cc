#include <gtest/gtest.h>

#include <cmath>

#include "rules/ccs_tree.h"
#include "rules/expert_rules.h"
#include "rules/rule_fusion.h"
#include "text/hashed_ngram_encoder.h"

namespace subrec::rules {
namespace {

corpus::Paper MakePaper(corpus::PaperId id, std::vector<std::string> sentences,
                        std::vector<corpus::PaperId> refs,
                        std::vector<std::string> keywords = {}) {
  corpus::Paper p;
  p.id = id;
  for (auto& s : sentences) p.abstract_sentences.push_back({std::move(s), -1});
  p.references = std::move(refs);
  p.keywords = std::move(keywords);
  return p;
}

TEST(CcsTree, LevelsAndPaths) {
  CcsTree tree;
  const int cs = tree.AddNode("cs", tree.root());
  const int db = tree.AddNode("db", cs);
  const int ml = tree.AddNode("ml", cs);
  EXPECT_EQ(tree.level(tree.root()), 0);
  EXPECT_EQ(tree.level(cs), 1);
  EXPECT_EQ(tree.level(db), 2);
  EXPECT_EQ(tree.PathFromRoot(db), (std::vector<int>{tree.root(), cs, db}));
  EXPECT_EQ(tree.children(cs).size(), 2u);
  EXPECT_EQ(tree.parent(ml), cs);
}

TEST(CcsTree, PathDifferenceProperties) {
  CcsTree tree;
  const int cs = tree.AddNode("cs", tree.root());
  const int bio = tree.AddNode("bio", tree.root());
  const int db = tree.AddNode("db", cs);
  const int ml = tree.AddNode("ml", cs);
  const int gen = tree.AddNode("genomics", bio);

  // Identity: zero difference.
  EXPECT_EQ(tree.PathDifference(db, db), 0.0);
  // Symmetry.
  EXPECT_EQ(tree.PathDifference(db, gen), tree.PathDifference(gen, db));
  // Sibling leaves differ less than cross-discipline leaves (Eq. 1:
  // divergence near the root costs more).
  EXPECT_LT(tree.PathDifference(db, ml), tree.PathDifference(db, gen));
}

TEST(CcsTree, UniformBuilder) {
  CcsTree tree = BuildUniformTree({2, 3});
  // 1 root + 2 + 6.
  EXPECT_EQ(tree.size(), 9u);
  EXPECT_EQ(tree.Leaves().size(), 6u);
}

class ExpertRulesTest : public ::testing::Test {
 protected:
  ExpertRulesTest()
      : tree_(BuildUniformTree({2, 2})),
        engine_(&tree_, &encoder_, nullptr) {}

  CcsTree tree_;
  text::HashedNgramEncoder encoder_;
  ExpertRuleEngine engine_;
};

TEST_F(ExpertRulesTest, ReferenceScoreReciprocalJaccard) {
  corpus::Paper a = MakePaper(0, {"x."}, {10, 11, 12});
  corpus::Paper b = MakePaper(1, {"y."}, {11, 12, 13});
  // union 4, intersection 2 -> (4+1)/(2+1).
  EXPECT_NEAR(engine_.ReferenceScore(a, b), 5.0 / 3.0, 1e-12);
  // identical reference sets -> (3+1)/(3+1) = 1 (minimum difference).
  EXPECT_NEAR(engine_.ReferenceScore(a, a), 1.0, 1e-12);
  // disjoint stays finite thanks to smoothing.
  corpus::Paper c = MakePaper(2, {"z."}, {20, 21});
  EXPECT_NEAR(engine_.ReferenceScore(a, c), 6.0, 1e-12);
}

TEST_F(ExpertRulesTest, ClassificationScoreUsesLeafTags) {
  corpus::Paper a = MakePaper(0, {"x."}, {});
  corpus::Paper b = MakePaper(1, {"y."}, {});
  const auto leaves = tree_.Leaves();
  a.ccs_path = tree_.PathFromRoot(leaves[0]);
  b.ccs_path = tree_.PathFromRoot(leaves[1]);
  EXPECT_GT(engine_.ClassificationScore(a, b), 0.0);
  b.ccs_path = a.ccs_path;
  EXPECT_EQ(engine_.ClassificationScore(a, b), 0.0);
  // Missing tags -> no evidence.
  b.ccs_path.clear();
  EXPECT_EQ(engine_.ClassificationScore(a, b), 0.0);
}

TEST_F(ExpertRulesTest, FeaturesHaveSubspaceMeans) {
  corpus::Paper p = MakePaper(
      0, {"background of the problem.", "we propose a method.",
          "results show improvement."},
      {});
  const auto f = engine_.ComputeFeatures(p, {0, 1, 2});
  ASSERT_EQ(f.subspace_means.size(), 3u);
  ASSERT_EQ(f.sentence_vectors.size(), 3u);
  // Each subspace mean equals its single sentence vector.
  for (int k = 0; k < 3; ++k)
    EXPECT_EQ(f.subspace_means[static_cast<size_t>(k)],
              f.sentence_vectors[static_cast<size_t>(k)]);
}

TEST_F(ExpertRulesTest, EmptySubspaceMeanIsZero) {
  corpus::Paper p = MakePaper(0, {"only background."}, {});
  const auto f = engine_.ComputeFeatures(p, {0});
  for (double v : f.subspace_means[1]) EXPECT_EQ(v, 0.0);
  for (double v : f.subspace_means[2]) EXPECT_EQ(v, 0.0);
}

TEST_F(ExpertRulesTest, AbstractSubspaceScoreLocalizesDifference) {
  // Same background and result; different method sentences.
  corpus::Paper a = MakePaper(0,
                              {"shared background context sentence.",
                               "we use gradient descent optimization.",
                               "shared results summary sentence."},
                              {});
  corpus::Paper b = MakePaper(1,
                              {"shared background context sentence.",
                               "we use genetic evolutionary search.",
                               "shared results summary sentence."},
                              {});
  const auto fa = engine_.ComputeFeatures(a, {0, 1, 2});
  const auto fb = engine_.ComputeFeatures(b, {0, 1, 2});
  const auto scores = engine_.AbstractSubspaceScores(fa, fb);
  EXPECT_NEAR(scores[0], 0.0, 1e-9);
  EXPECT_NEAR(scores[2], 0.0, 1e-9);
  EXPECT_GT(scores[1], 0.1);
}

TEST_F(ExpertRulesTest, AllScoresShape) {
  corpus::Paper a = MakePaper(0, {"alpha beta."}, {1});
  corpus::Paper b = MakePaper(1, {"gamma delta."}, {2});
  const auto fa = engine_.ComputeFeatures(a, {0});
  const auto fb = engine_.ComputeFeatures(b, {1});
  const auto scores = engine_.AllScores(a, fa, b, fb);
  ASSERT_EQ(scores.size(), static_cast<size_t>(kNumExpertRules));
  for (const auto& row : scores) EXPECT_EQ(row.size(), 3u);
  // Whole-paper rules replicate across subspaces.
  EXPECT_EQ(scores[kRuleReferences][0], scores[kRuleReferences][2]);
}

TEST(RuleFusion, NormalizationCentersScores) {
  RuleFusion fusion(3);
  // Calibration sample with constant rule values.
  std::vector<std::vector<std::vector<double>>> samples;
  for (int i = 0; i < 10; ++i) {
    samples.push_back({{1.0, 1.0, 1.0},
                       {2.0, 2.0, 2.0},
                       {3.0, 3.0, 3.0},
                       {static_cast<double>(i), 0.0, 0.0}});
  }
  ASSERT_TRUE(fusion.FitNormalization(samples).ok());
  // A pair at the calibration mean fuses to ~0.
  const double fused =
      fusion.Fuse({{1.0, 1, 1}, {2.0, 2, 2}, {3.0, 3, 3}, {4.5, 0, 0}}, 0);
  EXPECT_NEAR(fused, 0.0, 1e-9);
}

TEST(RuleFusion, WeightsValidation) {
  RuleFusion fusion(3);
  EXPECT_FALSE(fusion.SetWeights(0, {1.0}).ok());         // wrong arity
  EXPECT_FALSE(fusion.SetWeights(0, {0, 0, 0, 0}).ok());  // all zero
  EXPECT_FALSE(fusion.SetWeights(9, {1, 1, 1, 1}).ok());  // bad subspace
  ASSERT_TRUE(fusion.SetWeights(0, {2, 0, 0, 2}).ok());
  const auto& w = fusion.weights(0);
  EXPECT_NEAR(w[0], 0.5, 1e-12);
  EXPECT_NEAR(w[3], 0.5, 1e-12);
}

TEST(RuleFusion, EmptyCalibrationFails) {
  RuleFusion fusion(3);
  EXPECT_FALSE(fusion.FitNormalization({}).ok());
}

}  // namespace
}  // namespace subrec::rules
