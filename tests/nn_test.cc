#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/tape.h"
#include "common/rng.h"
#include "la/ops.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/parameter.h"

namespace subrec::nn {
namespace {

TEST(ParameterStore, CreateAndZero) {
  ParameterStore store;
  Parameter* p = store.Create("w", la::Matrix(2, 3, 1.0));
  EXPECT_EQ(p->name, "w");
  EXPECT_EQ(p->grad.rows(), 2u);
  p->grad(0, 0) = 5.0;
  store.ZeroGrads();
  EXPECT_EQ(p->grad(0, 0), 0.0);
  EXPECT_EQ(store.TotalSize(), 6u);
}

TEST(TapeBinding, DedupesRepeatedUse) {
  ParameterStore store;
  Parameter* p = store.Create("w", la::Matrix(1, 2, 1.0));
  autodiff::Tape tape;
  TapeBinding binding(&tape);
  autodiff::VarId a = binding.Use(p);
  autodiff::VarId b = binding.Use(p);
  EXPECT_EQ(a, b);
}

TEST(TapeBinding, PullAccumulatesIntoParameter) {
  ParameterStore store;
  Parameter* p = store.Create("w", la::Matrix(1, 1, 3.0));
  autodiff::Tape tape;
  TapeBinding binding(&tape);
  autodiff::VarId x = binding.Use(p);
  autodiff::VarId loss = tape.SumSquares(x);  // d/dx = 2x = 6
  tape.Backward(loss);
  binding.PullGradients();
  EXPECT_NEAR(p->grad(0, 0), 6.0, 1e-12);
  // Second pass accumulates.
  autodiff::Tape tape2;
  TapeBinding binding2(&tape2);
  autodiff::VarId x2 = binding2.Use(p);
  tape2.Backward(tape2.SumSquares(x2));
  binding2.PullGradients();
  EXPECT_NEAR(p->grad(0, 0), 12.0, 1e-12);
}

TEST(Init, GlorotBounds) {
  Rng rng(1);
  la::Matrix w = GlorotUniform(100, 100, rng);
  const double bound = std::sqrt(6.0 / 200.0);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w[i]), bound);
  }
}

TEST(Dense, ForwardShapeAndActivation) {
  ParameterStore store;
  Rng rng(2);
  Dense layer(&store, "d", 4, 3, rng, Activation::kTanh);
  autodiff::Tape tape;
  TapeBinding binding(&tape);
  autodiff::VarId x = tape.Constant(la::Matrix::Random(5, 4, rng));
  autodiff::VarId y = layer.Forward(&tape, &binding, x);
  EXPECT_EQ(tape.value(y).rows(), 5u);
  EXPECT_EQ(tape.value(y).cols(), 3u);
  for (size_t i = 0; i < tape.value(y).size(); ++i)
    EXPECT_LE(std::fabs(tape.value(y)[i]), 1.0);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // minimize (w - 3)^2.
  ParameterStore store;
  Parameter* w = store.Create("w", la::Matrix(1, 1, 0.0));
  Sgd opt(0.1);
  for (int i = 0; i < 200; ++i) {
    w->grad(0, 0) = 2.0 * (w->value(0, 0) - 3.0);
    opt.Step(store.params());
  }
  EXPECT_NEAR(w->value(0, 0), 3.0, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
  ParameterStore store;
  Parameter* w = store.Create("w", la::Matrix(1, 1, -5.0));
  Adam opt(0.1);
  for (int i = 0; i < 500; ++i) {
    w->grad(0, 0) = 2.0 * (w->value(0, 0) - 3.0);
    opt.Step(store.params());
  }
  EXPECT_NEAR(w->value(0, 0), 3.0, 1e-3);
}

TEST(Adam, LearnsLinearRegressionEndToEnd) {
  // y = x * W_true, learn W via tape + Adam.
  Rng rng(3);
  la::Matrix w_true = {{2.0}, {-1.0}};
  la::Matrix x = la::Matrix::Random(32, 2, rng);
  la::Matrix y = la::MatMul(x, w_true);

  ParameterStore store;
  Parameter* w = store.Create("w", la::Matrix(2, 1, 0.0));
  Adam opt(0.05);
  double final_loss = 1e9;
  for (int step = 0; step < 400; ++step) {
    autodiff::Tape tape;
    TapeBinding binding(&tape);
    autodiff::VarId pred = tape.MatMul(tape.Constant(x), binding.Use(w));
    autodiff::VarId err = tape.Sub(pred, tape.Constant(y));
    autodiff::VarId loss = tape.SumSquares(err);
    tape.Backward(loss);
    binding.PullGradients();
    opt.Step(store.params());
    final_loss = tape.value(loss)(0, 0);
  }
  EXPECT_LT(final_loss, 1e-4);
  EXPECT_NEAR(w->value(0, 0), 2.0, 0.05);
  EXPECT_NEAR(w->value(1, 0), -1.0, 0.05);
}

TEST(ClipGradNorm, RescalesWhenAboveThreshold) {
  ParameterStore store;
  Parameter* p = store.Create("p", la::Matrix(1, 2));
  p->grad(0, 0) = 3.0;
  p->grad(0, 1) = 4.0;  // norm 5
  const double before = ClipGradNorm(store.params(), 1.0);
  EXPECT_NEAR(before, 5.0, 1e-12);
  EXPECT_NEAR(std::hypot(p->grad(0, 0), p->grad(0, 1)), 1.0, 1e-12);
}

TEST(ClipGradNorm, NoopBelowThreshold) {
  ParameterStore store;
  Parameter* p = store.Create("p", la::Matrix(1, 1));
  p->grad(0, 0) = 0.5;
  ClipGradNorm(store.params(), 1.0);
  EXPECT_EQ(p->grad(0, 0), 0.5);
}

TEST(Loss, TripletHingeZeroWhenSatisfiedByMargin) {
  autodiff::Tape tape;
  autodiff::VarId d_pos = tape.Constant(la::Matrix(1, 1, 2.0));
  autodiff::VarId d_neg = tape.Constant(la::Matrix(1, 1, 0.5));
  autodiff::VarId loss = TripletHingeLoss(&tape, d_pos, d_neg, 0.5);
  EXPECT_EQ(tape.value(loss)(0, 0), 0.0);
}

TEST(Loss, TripletHingePenalizesViolation) {
  autodiff::Tape tape;
  autodiff::VarId d_pos = tape.Constant(la::Matrix(1, 1, 0.0));
  autodiff::VarId d_neg = tape.Constant(la::Matrix(1, 1, 1.0));
  autodiff::VarId loss = TripletHingeLoss(&tape, d_pos, d_neg, 0.5);
  EXPECT_NEAR(tape.value(loss)(0, 0), 1.5, 1e-12);
}

TEST(Loss, L2RegularizerAddsWeightNorm) {
  ParameterStore store;
  Parameter* w = store.Create("w", la::Matrix(1, 2, 2.0));  // ||w||^2 = 8
  autodiff::Tape tape;
  TapeBinding binding(&tape);
  autodiff::VarId base = tape.Constant(la::Matrix(1, 1, 1.0));
  autodiff::VarId total =
      AddL2Regularizer(&tape, &binding, base, {w}, 0.5);
  EXPECT_NEAR(tape.value(total)(0, 0), 1.0 + 0.5 * 8.0, 1e-12);
}

}  // namespace
}  // namespace subrec::nn
