#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.h"
#include "common/rng.h"
#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "graph/academic_graph.h"
#include "rec/baselines_quality.h"
#include "rec/candidate_sets.h"
#include "rec/embedding_baselines.h"
#include "rec/jtie.h"
#include "rec/kgcn.h"
#include "rec/mlp_ncf.h"
#include "rec/nbcf.h"
#include "rec/nprec.h"
#include "rec/ripplenet.h"
#include "rec/sampler.h"
#include "rec/svd.h"
#include "rec/wnmf.h"
#include "text/hashed_ngram_encoder.h"

namespace subrec::rec {
namespace {

/// Shared tiny evaluation world: corpus, split, graph, naive subspace
/// embeddings (frozen-encoder means — good enough to exercise the code
/// paths without training SEM here).
class RecWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = datagen::GenerateCorpus(
        datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 4242));
    SUBREC_CHECK(result.ok());
    dataset_ = new datagen::GeneratedDataset(std::move(result).value());
    const auto split = datagen::SplitByYear(dataset_->corpus, 2014);

    graph::GraphBuildOptions graph_options;
    graph_options.citation_year_cutoff = 2014;
    index_ = new graph::GraphIndex(
        graph::BuildAcademicGraph(dataset_->corpus, graph_options));

    text::HashedNgramEncoderOptions enc_options;
    enc_options.dim = 24;
    text::HashedNgramEncoder encoder(enc_options);
    subspace_ = new SubspaceEmbeddings();
    text_ = new std::vector<std::vector<double>>();
    for (const auto& p : dataset_->corpus.papers) {
      std::vector<std::vector<double>> subs(3,
                                            std::vector<double>(24, 0.0));
      std::vector<int> counts(3, 0);
      for (const auto& s : p.abstract_sentences) {
        const auto v = encoder.Encode(s.text);
        for (size_t j = 0; j < v.size(); ++j)
          subs[static_cast<size_t>(s.role)][j] += v[j];
        ++counts[static_cast<size_t>(s.role)];
      }
      std::vector<double> fused(24, 0.0);
      for (int k = 0; k < 3; ++k) {
        if (counts[static_cast<size_t>(k)] > 0) {
          for (double& x : subs[static_cast<size_t>(k)])
            x /= counts[static_cast<size_t>(k)];
        }
        for (size_t j = 0; j < 24; ++j)
          fused[j] += subs[static_cast<size_t>(k)][j] / 3.0;
      }
      subspace_->push_back(std::move(subs));
      text_->push_back(std::move(fused));
    }

    ctx_ = new RecContext();
    ctx_->corpus = &dataset_->corpus;
    ctx_->graph = index_;
    ctx_->split_year = 2014;
    ctx_->train_papers = split.train;
    ctx_->test_papers = split.test;
    ctx_->paper_text = text_;

    users_ = new std::vector<corpus::AuthorId>(
        datagen::SelectUsers(dataset_->corpus, 2014, 2));
    SUBREC_CHECK(!users_->empty());
    Rng rng(1);
    sets_ = new std::vector<CandidateSet>();
    for (corpus::AuthorId u : *users_)
      sets_->push_back(BuildCandidateSet(*ctx_, u, 20, rng));
  }

  static datagen::GeneratedDataset* dataset_;
  static graph::GraphIndex* index_;
  static SubspaceEmbeddings* subspace_;
  static std::vector<std::vector<double>>* text_;
  static RecContext* ctx_;
  static std::vector<corpus::AuthorId>* users_;
  static std::vector<CandidateSet>* sets_;
};

datagen::GeneratedDataset* RecWorld::dataset_ = nullptr;
graph::GraphIndex* RecWorld::index_ = nullptr;
SubspaceEmbeddings* RecWorld::subspace_ = nullptr;
std::vector<std::vector<double>>* RecWorld::text_ = nullptr;
RecContext* RecWorld::ctx_ = nullptr;
std::vector<corpus::AuthorId>* RecWorld::users_ = nullptr;
std::vector<CandidateSet>* RecWorld::sets_ = nullptr;

TEST_F(RecWorld, UserHelpers) {
  const corpus::AuthorId u = (*users_)[0];
  const auto interactions = UserInteractions(*ctx_, u);
  EXPECT_FALSE(interactions.empty());
  for (corpus::PaperId pid : interactions)
    EXPECT_LE(dataset_->corpus.paper(pid).year, 2014);
  const auto profile5 = UserProfile(*ctx_, u, 5);
  EXPECT_LE(profile5.size(), 5u);
  const auto all = UserProfile(*ctx_, u);
  EXPECT_GE(all.size(), profile5.size());
  // Most recent first.
  for (size_t i = 1; i < all.size(); ++i)
    EXPECT_GE(dataset_->corpus.paper(all[i - 1]).year,
              dataset_->corpus.paper(all[i]).year);
}

TEST_F(RecWorld, CandidateSetsContainRelevantAndNew) {
  for (const CandidateSet& set : *sets_) {
    ASSERT_FALSE(set.papers.empty());
    EXPECT_LE(set.papers.size(), 20u);
    EXPECT_TRUE(std::any_of(set.relevant.begin(), set.relevant.end(),
                            [](bool b) { return b; }));
    for (corpus::PaperId pid : set.papers)
      EXPECT_GT(dataset_->corpus.paper(pid).year, 2014);
  }
}

TEST_F(RecWorld, SamplerRespectsRatioAndLabels) {
  SamplerOptions options;
  options.negatives_per_positive = 3;
  options.max_positives = 50;
  options.use_defuzzing = false;
  DefuzzSampler sampler(options);
  const auto pairs = sampler.BuildPairs(*ctx_, nullptr);
  ASSERT_FALSE(pairs.empty());
  int pos = 0, neg = 0;
  for (const TrainingPair& p : pairs) {
    if (p.label > 0.5) {
      ++pos;
      // Positive means an actual citation.
      const auto& refs = dataset_->corpus.paper(p.citing).references;
      EXPECT_TRUE(std::find(refs.begin(), refs.end(), p.cited) != refs.end());
    } else {
      ++neg;
      const auto& refs = dataset_->corpus.paper(p.citing).references;
      EXPECT_TRUE(std::find(refs.begin(), refs.end(), p.cited) == refs.end());
    }
  }
  EXPECT_EQ(pos, 50);
  EXPECT_NEAR(static_cast<double>(neg) / pos, 3.0, 0.2);
}

TEST_F(RecWorld, DefuzzedNegativesAreFarInAllSubspaces) {
  SamplerOptions options;
  options.negatives_per_positive = 2;
  options.max_positives = 30;
  options.use_defuzzing = true;
  DefuzzSampler defuzz(options);
  options.use_defuzzing = false;
  DefuzzSampler plain(options);
  const auto defuzzed = defuzz.BuildPairs(*ctx_, subspace_);
  const auto baseline = plain.BuildPairs(*ctx_, subspace_);
  // Mean subspace distance of defuzzed negatives exceeds the unfiltered
  // baseline's.
  auto mean_negative_distance = [&](const std::vector<TrainingPair>& pairs) {
    double total = 0.0;
    int count = 0;
    for (const auto& p : pairs) {
      if (p.label > 0.5) continue;
      for (int k = 0; k < 3; ++k) {
        total += la::EuclideanDistance(
            (*subspace_)[static_cast<size_t>(p.citing)][static_cast<size_t>(k)],
            (*subspace_)[static_cast<size_t>(p.cited)][static_cast<size_t>(k)]);
      }
      ++count;
    }
    return total / std::max(count, 1);
  };
  EXPECT_GT(mean_negative_distance(defuzzed),
            mean_negative_distance(baseline));
}

NPRecOptions FastNPRecOptions() {
  NPRecOptions options;
  options.embed_dim = 12;
  options.neighbor_samples = 4;
  options.epochs = 1;
  options.sampler.max_positives = 150;
  options.sampler.negatives_per_positive = 3;
  return options;
}

TEST_F(RecWorld, NPRecFitsAndScores) {
  NPRec model(FastNPRecOptions(), subspace_);
  ASSERT_TRUE(model.Fit(*ctx_).ok());
  const auto& set = (*sets_)[0];
  UserQuery query{set.user, UserProfile(*ctx_, set.user)};
  const auto scores = model.Score(*ctx_, query, set.papers);
  EXPECT_EQ(scores.size(), set.papers.size());
  // Scores are probabilities.
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  // Embeddings exposed for Fig. 5 analyses.
  EXPECT_FALSE(model.PaperInterestVector(0).empty());
  EXPECT_FALSE(model.PaperInfluenceVector(0).empty());
  EXPECT_FALSE(model.PaperTextVector(0).empty());
}

TEST_F(RecWorld, NPRecAblationVariantsFit) {
  {
    NPRecOptions o = FastNPRecOptions();
    o.use_graph = false;  // +SC
    NPRec sc(o, subspace_);
    EXPECT_TRUE(sc.Fit(*ctx_).ok());
  }
  {
    NPRecOptions o = FastNPRecOptions();
    o.use_text = false;  // +SN
    o.sampler.use_defuzzing = false;
    NPRec sn(o, nullptr);
    EXPECT_TRUE(sn.Fit(*ctx_).ok());
  }
  {
    NPRecOptions o = FastNPRecOptions();
    o.sampler.use_defuzzing = false;  // +CN
    NPRec cn(o, subspace_);
    EXPECT_TRUE(cn.Fit(*ctx_).ok());
  }
}

TEST_F(RecWorld, NPRecRequiresDependencies) {
  NPRecOptions o = FastNPRecOptions();
#if SUBREC_DCHECK_IS_ON
  // Dev builds fail loudly at construction: text wanted, no subspace.
  EXPECT_DEATH(NPRec(o, nullptr), "subspace");
#else
  NPRec model(o, nullptr);  // text wanted but no subspace embeddings
  EXPECT_FALSE(model.Fit(*ctx_).ok());
#endif
}

#if SUBREC_DCHECK_IS_ON
/// The non-owning RecContext pointers are guarded: dangling or mismatched
/// context members die at the recommender boundary instead of corrupting
/// training silently.
TEST_F(RecWorld, InvalidContextDiesInDevBuilds) {
  RecContext bad = *ctx_;
  bad.corpus = nullptr;
  EXPECT_DEATH(DCheckValidContext(bad), "corpus");

  RecContext wrong_text = *ctx_;
  std::vector<std::vector<double>> short_text(1);
  wrong_text.paper_text = &short_text;
  EXPECT_DEATH(DCheckValidContext(wrong_text), "paper_text");

  RecContext leaky = *ctx_;
  std::vector<corpus::PaperId> future_train = leaky.train_papers;
  future_train.push_back(leaky.test_papers.front());  // post-split leak
  leaky.train_papers = future_train;
  EXPECT_DEATH(DCheckValidContext(leaky), "split");
}
#endif

TEST_F(RecWorld, KgcnVariantsConfigure) {
  const NPRecOptions base = FastNPRecOptions();
  const NPRecOptions kgcn = KgcnOptions(base);
  EXPECT_FALSE(kgcn.use_text);
  EXPECT_TRUE(kgcn.symmetric_neighborhoods);
  EXPECT_FALSE(kgcn.sampler.use_defuzzing);
  const NPRecOptions ls = KgcnLsOptions(base);
  EXPECT_GT(ls.label_smoothness, 0.0);
  NPRec model(kgcn, nullptr);
  EXPECT_TRUE(model.Fit(*ctx_).ok());
}

/// Every baseline must fit and produce a full, finite score vector.
TEST_F(RecWorld, AllBaselinesFitAndScore) {
  std::vector<std::unique_ptr<Recommender>> models;
  models.push_back(std::make_unique<SvdRecommender>());
  models.push_back(std::make_unique<WnmfRecommender>());
  models.push_back(std::make_unique<NbcfRecommender>());
  models.push_back(std::make_unique<MlpRecommender>([] {
    MlpNcfOptions o;
    o.epochs = 1;
    o.max_positives = 300;
    return o;
  }()));
  models.push_back(std::make_unique<JtieRecommender>());
  models.push_back(std::make_unique<RippleNetRecommender>());
  for (auto& model : models) {
    ASSERT_TRUE(model->Fit(*ctx_).ok()) << model->name();
    const auto& set = (*sets_)[0];
    UserQuery query{set.user, UserProfile(*ctx_, set.user)};
    const auto scores = model->Score(*ctx_, query, set.papers);
    ASSERT_EQ(scores.size(), set.papers.size()) << model->name();
    for (double s : scores)
      EXPECT_TRUE(std::isfinite(s)) << model->name();
  }
}

TEST_F(RecWorld, EvaluateRecommenderAggregates) {
  NbcfRecommender model;
  ASSERT_TRUE(model.Fit(*ctx_).ok());
  const RecEvalResult result =
      EvaluateRecommender(*ctx_, model, *sets_, 20);
  EXPECT_GT(result.users_evaluated, 0);
  EXPECT_GE(result.ndcg, 0.0);
  EXPECT_LE(result.ndcg, 1.0);
  EXPECT_GE(result.mrr, 0.0);
  EXPECT_LE(result.map, 1.0);
  // Content-aware CF on this corpus must beat a random ranking by a wide
  // margin (random nDCG@20 with ~2 relevant of 20 is far below 0.5).
  EXPECT_GT(result.ndcg, 0.3);
}

TEST_F(RecWorld, QualityBaselinesProduceScores) {
  std::vector<corpus::PaperId> papers;
  for (int i = 0; i < 100; ++i) papers.push_back(i);
  const auto clt = CltScores(dataset_->corpus, papers);
  const auto csj = CsjScores(dataset_->corpus, papers);
  const auto hp = HpScores(dataset_->corpus, papers);
  ASSERT_EQ(clt.size(), papers.size());
  ASSERT_EQ(csj.size(), papers.size());
  ASSERT_EQ(hp.size(), papers.size());
  // HP must correlate positively with final citations (early citations
  // predict later ones under preferential attachment).
  std::vector<double> cites;
  for (corpus::PaperId pid : papers)
    cites.push_back(static_cast<double>(dataset_->corpus.paper(pid).citation_count));
  EXPECT_GT(eval::SpearmanCorrelation(hp, cites), 0.2);
}

TEST_F(RecWorld, EmbeddingBaselinesShapes) {
  std::vector<corpus::PaperId> papers;
  for (int i = 0; i < 60; ++i) papers.push_back(i);
  auto shpe = ShpeEmbeddings(dataset_->corpus, papers, 1);
  ASSERT_TRUE(shpe.ok());
  EXPECT_EQ(shpe.value().rows(), papers.size());
  auto d2v = Doc2VecEmbeddings(dataset_->corpus, papers, 2);
  ASSERT_TRUE(d2v.ok());
  EXPECT_EQ(d2v.value().rows(), papers.size());
  text::HashedNgramEncoder encoder;
  auto bert = BertAvgEmbeddings(dataset_->corpus, papers, encoder);
  EXPECT_EQ(bert.rows(), papers.size());
  EXPECT_EQ(bert.cols(), encoder.dim());
}

}  // namespace
}  // namespace subrec::rec
