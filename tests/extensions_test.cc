// Tests for the extension/calibration features added on top of the core
// reproduction: clustered LOF (Sec. III-C's GMM-scoped outlier analysis),
// the residual subspace encoder, adjustable subspace counts, the de-fuzzing
// sampler's geometry, NPRec's influence-prior channel, and the citation-
// habit process of the generator.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "cluster/lof.h"
#include "common/rng.h"
#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "eval/metrics.h"
#include "graph/academic_graph.h"
#include "la/ops.h"
#include "rec/nprec.h"
#include "rules/expert_rules.h"
#include "rules/rule_fusion.h"
#include "subspace/subspace_encoder.h"
#include "text/hashed_ngram_encoder.h"

namespace subrec {
namespace {

TEST(ClusteredLof, FlagsOutliersInsideEachBlob) {
  Rng rng(1);
  // Two blobs far apart with one planted outlier near (but not in) each.
  la::Matrix data(42, 2);
  for (int i = 0; i < 20; ++i) {
    data(static_cast<size_t>(i), 0) = rng.Gaussian(0.0, 0.4);
    data(static_cast<size_t>(i), 1) = rng.Gaussian(0.0, 0.4);
    data(static_cast<size_t>(20 + i), 0) = rng.Gaussian(20.0, 0.4);
    data(static_cast<size_t>(20 + i), 1) = rng.Gaussian(20.0, 0.4);
  }
  data(40, 0) = 3.5;   // outlier of blob A
  data(40, 1) = 3.5;
  data(41, 0) = 16.5;  // outlier of blob B
  data(41, 1) = 16.5;
  auto result = cluster::ClusteredLocalOutlierFactor(data, 5, 2, 2);
  ASSERT_TRUE(result.ok());
  const auto& lof = result.value();
  // Both planted outliers beat every regular point of their blob.
  double max_regular = 0.0;
  for (int i = 0; i < 40; ++i)
    max_regular = std::max(max_regular, lof[static_cast<size_t>(i)]);
  EXPECT_GT(lof[40], max_regular * 0.9);
  EXPECT_GT(lof[41], max_regular * 0.9);
}

TEST(ClusteredLof, RejectsTinyInput) {
  la::Matrix data(4, 2);
  EXPECT_FALSE(cluster::ClusteredLocalOutlierFactor(data, 3).ok());
}

TEST(SubspaceEncoderResidual, StaysNearFrozenMean) {
  subspace::SubspaceEncoderOptions options;
  options.input_dim = 16;
  options.hidden_dim = 16;  // residual requires equality
  options.attention_dim = 8;
  options.residual = true;
  options.residual_scale = 0.1;
  nn::ParameterStore store;
  Rng rng(2);
  subspace::SubspaceEncoderNet net(&store, options, rng);

  std::vector<std::vector<double>> sentences;
  for (int i = 0; i < 4; ++i) {
    std::vector<double> v(16);
    for (double& x : v) x = rng.Gaussian();
    la::NormalizeL2(v);
    sentences.push_back(v);
  }
  std::vector<int> roles = {0, 0, 1, 2};

  autodiff::Tape tape;
  nn::TapeBinding binding(&tape);
  const auto out = net.Forward(&tape, &binding, sentences, roles);
  // The pooled half (first hidden_dim columns) of subspace 0 must be close
  // to the mean of its two sentences: residual correction is scaled small.
  std::vector<double> mean(16, 0.0);
  la::AxpyVec(0.5, sentences[0], mean);
  la::AxpyVec(0.5, sentences[1], mean);
  double delta = 0.0;
  for (size_t j = 0; j < 16; ++j) {
    const double d = tape.value(out[0])(0, j) - mean[j];
    delta += d * d;
  }
  EXPECT_LT(std::sqrt(delta), 0.5 * la::Norm2(mean) + 0.3);
}

TEST(SubspaceEncoderResidual, RejectsMismatchedDims) {
  subspace::SubspaceEncoderOptions options;
  options.input_dim = 16;
  options.hidden_dim = 8;
  options.residual = true;
  nn::ParameterStore store;
  Rng rng(3);
  EXPECT_DEATH(subspace::SubspaceEncoderNet(&store, options, rng),
               "hidden_dim == input_dim");
}

TEST(AdjustableSubspaces, RulesAndFusionSupportK4) {
  // The paper: "the number of the subspaces can be adjusted". Roles beyond
  // the generated 3 simply stay empty.
  text::HashedNgramEncoder encoder;
  rules::ExpertRuleOptions options;
  options.num_subspaces = 4;
  rules::ExpertRuleEngine engine(nullptr, &encoder, nullptr, options);
  corpus::Paper p;
  p.id = 0;
  p.abstract_sentences = {{"background statement.", 0},
                          {"our novel method.", 1},
                          {"strong results.", 2}};
  const auto features = engine.ComputeFeatures(p, {0, 1, 2});
  ASSERT_EQ(features.subspace_means.size(), 4u);
  for (double v : features.subspace_means[3]) EXPECT_EQ(v, 0.0);

  rules::RuleFusion fusion(4);
  const auto scores = engine.AllScores(p, features, p, features);
  const auto fused = fusion.FuseAll(scores);
  EXPECT_EQ(fused.size(), 4u);
}

class RecExtensionsWorld : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto result = datagen::GenerateCorpus(
        datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 888));
    SUBREC_CHECK(result.ok());
    dataset_ = new datagen::GeneratedDataset(std::move(result).value());
    const auto split = datagen::SplitByYear(dataset_->corpus, 2014);
    graph::GraphBuildOptions graph_options;
    graph_options.citation_year_cutoff = 2014;
    index_ = new graph::GraphIndex(
        graph::BuildAcademicGraph(dataset_->corpus, graph_options));

    text::HashedNgramEncoderOptions enc_options;
    enc_options.dim = 24;
    text::HashedNgramEncoder encoder(enc_options);
    subspace_ = new rec::SubspaceEmbeddings();
    text_ = new std::vector<std::vector<double>>();
    for (const auto& p : dataset_->corpus.papers) {
      std::vector<std::vector<double>> subs(3, std::vector<double>(24, 0.0));
      std::vector<int> counts(3, 0);
      for (const auto& s : p.abstract_sentences) {
        la::AxpyVec(1.0, encoder.Encode(s.text),
                    subs[static_cast<size_t>(s.role)]);
        ++counts[static_cast<size_t>(s.role)];
      }
      std::vector<double> fused(24, 0.0);
      for (int k = 0; k < 3; ++k) {
        if (counts[static_cast<size_t>(k)] > 0)
          for (double& x : subs[static_cast<size_t>(k)])
            x /= counts[static_cast<size_t>(k)];
        la::AxpyVec(1.0 / 3.0, subs[static_cast<size_t>(k)], fused);
      }
      subspace_->push_back(std::move(subs));
      text_->push_back(std::move(fused));
    }
    ctx_ = new rec::RecContext();
    ctx_->corpus = &dataset_->corpus;
    ctx_->graph = index_;
    ctx_->split_year = 2014;
    ctx_->train_papers = split.train;
    ctx_->test_papers = split.test;
    ctx_->paper_text = text_;
  }
  static datagen::GeneratedDataset* dataset_;
  static graph::GraphIndex* index_;
  static rec::SubspaceEmbeddings* subspace_;
  static std::vector<std::vector<double>>* text_;
  static rec::RecContext* ctx_;
};
datagen::GeneratedDataset* RecExtensionsWorld::dataset_ = nullptr;
graph::GraphIndex* RecExtensionsWorld::index_ = nullptr;
rec::SubspaceEmbeddings* RecExtensionsWorld::subspace_ = nullptr;
std::vector<std::vector<double>>* RecExtensionsWorld::text_ = nullptr;
rec::RecContext* RecExtensionsWorld::ctx_ = nullptr;

TEST_F(RecExtensionsWorld, InfluencePriorExtendsVectors) {
  rec::NPRecOptions with_prior;
  with_prior.epochs = 1;
  with_prior.sampler.max_positives = 100;
  rec::NPRecOptions without = with_prior;
  without.use_influence_prior = false;

  rec::NPRec a(with_prior, subspace_);
  rec::NPRec b(without, subspace_);
  ASSERT_TRUE(a.Fit(*ctx_).ok());
  ASSERT_TRUE(b.Fit(*ctx_).ok());
  // The prior channel adds exactly two dimensions to both sides.
  EXPECT_EQ(a.PaperInterestVector(0).size(),
            b.PaperInterestVector(0).size() + 2);
  EXPECT_EQ(a.PaperInfluenceVector(0).size(),
            b.PaperInfluenceVector(0).size() + 2);
}

TEST_F(RecExtensionsWorld, PriorFeaturesTrackCitationMass) {
  // A paper citing heavily-cited work must get a larger first prior
  // feature than one citing nothing — verified through the influence
  // vector's tail entries.
  rec::NPRecOptions options;
  options.epochs = 1;
  options.sampler.max_positives = 100;
  rec::NPRec model(options, subspace_);
  ASSERT_TRUE(model.Fit(*ctx_).ok());

  // Find train papers with max / zero cited-reference mass.
  std::vector<int> in_degree(dataset_->corpus.papers.size(), 0);
  for (corpus::PaperId pid : ctx_->train_papers)
    for (corpus::PaperId ref : dataset_->corpus.paper(pid).references)
      if (dataset_->corpus.paper(ref).year <= 2014)
        ++in_degree[static_cast<size_t>(ref)];
  corpus::PaperId rich = ctx_->train_papers[0];
  corpus::PaperId poor = ctx_->train_papers[0];
  auto ref_mass = [&](corpus::PaperId pid) {
    int total = 0;
    for (corpus::PaperId ref : dataset_->corpus.paper(pid).references)
      total += in_degree[static_cast<size_t>(ref)];
    return total;
  };
  for (corpus::PaperId pid : ctx_->train_papers) {
    if (ref_mass(pid) > ref_mass(rich)) rich = pid;
    if (ref_mass(pid) < ref_mass(poor)) poor = pid;
  }
  ASSERT_GT(ref_mass(rich), ref_mass(poor));
  const auto& vr = model.PaperInfluenceVector(rich);
  const auto& vp = model.PaperInfluenceVector(poor);
  EXPECT_GT(vr[vr.size() - 2], vp[vp.size() - 2]);
}

TEST_F(RecExtensionsWorld, RawTextChannelAddsEncoderDims) {
  rec::NPRecOptions options;
  options.epochs = 1;
  options.sampler.max_positives = 80;
  options.use_raw_text_channel = true;
  rec::NPRec model(options, subspace_);
  ASSERT_TRUE(model.Fit(*ctx_).ok());
  rec::NPRecOptions plain = options;
  plain.use_raw_text_channel = false;
  rec::NPRec base(plain, subspace_);
  ASSERT_TRUE(base.Fit(*ctx_).ok());
  EXPECT_EQ(model.PaperInterestVector(0).size(),
            base.PaperInterestVector(0).size() + 24);
}

TEST_F(RecExtensionsWorld, PairScoreIsProbability) {
  rec::NPRecOptions options;
  options.epochs = 1;
  options.sampler.max_positives = 100;
  rec::NPRec model(options, subspace_);
  ASSERT_TRUE(model.Fit(*ctx_).ok());
  for (corpus::PaperId p : {0, 5, 10}) {
    for (corpus::PaperId q : {1, 6, 11}) {
      const double y = model.PairScore(p, q);
      EXPECT_GE(y, 0.0);
      EXPECT_LE(y, 1.0);
    }
  }
}

TEST(CitationHabit, TeamsKeepCitingTheSameAuthors) {
  // The habit process must make a team's later citations concentrate on
  // authors it cited before — the predictability recommenders exploit.
  auto generated = datagen::GenerateCorpus(
      datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 999));
  ASSERT_TRUE(generated.ok());
  const corpus::Corpus& corpus = generated.value().corpus;

  // For each author with enough history, check overlap between the author
  // sets cited before and after 2014.
  double overlap_total = 0.0;
  int measured = 0;
  for (const corpus::Author& a : corpus.authors) {
    std::unordered_set<corpus::AuthorId> before, after;
    for (corpus::PaperId pid : a.papers) {
      const corpus::Paper& p = corpus.paper(pid);
      for (corpus::PaperId ref : p.references) {
        for (corpus::AuthorId ca : corpus.paper(ref).authors) {
          (p.year <= 2014 ? before : after).insert(ca);
        }
      }
    }
    if (before.size() < 5 || after.size() < 5) continue;
    int inter = 0;
    for (corpus::AuthorId ca : after)
      if (before.count(ca) > 0) ++inter;
    overlap_total += static_cast<double>(inter) /
                     static_cast<double>(after.size());
    ++measured;
  }
  ASSERT_GT(measured, 5);
  // Without habit the expected overlap would hover near the share of
  // previously-cited authors among all authors (< ~0.5 at this scale).
  EXPECT_GT(overlap_total / measured, 0.5);
}

TEST(GraphCutoff, HeldOutCitationsNeverEnterTheGraph) {
  auto generated = datagen::GenerateCorpus(
      datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 777));
  ASSERT_TRUE(generated.ok());
  const corpus::Corpus& corpus = generated.value().corpus;
  graph::GraphBuildOptions options;
  options.citation_year_cutoff = 2014;
  const graph::GraphIndex index = graph::BuildAcademicGraph(corpus, options);
  for (const corpus::Paper& p : corpus.papers) {
    for (const graph::Edge& e :
         index.graph.OutEdges(index.paper_nodes[static_cast<size_t>(p.id)])) {
      if (e.rel != graph::RelationType::kCites) continue;
      const int cited_year =
          corpus.paper(index.graph.external_id(e.dst)).year;
      EXPECT_LE(cited_year, 2014);
    }
  }
}

}  // namespace
}  // namespace subrec
