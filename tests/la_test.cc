#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "la/matrix.h"
#include "la/ops.h"

namespace subrec::la {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m[i], 0.0);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(Matrix, IdentityAndReshape) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(1, 1), 1.0);
  EXPECT_EQ(id(1, 2), 0.0);
  Matrix m(2, 6, 1.0);
  m.Reshape(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
}

TEST(Matrix, RowRoundTrip) {
  Matrix m(2, 3);
  m.SetRow(1, {7, 8, 9});
  EXPECT_EQ(m.RowToVector(1), (std::vector<double>{7, 8, 9}));
}

TEST(Ops, MatMulMatchesHandComputation) {
  Matrix a = {{1, 2, 3}, {4, 5, 6}};
  Matrix b = {{7, 8}, {9, 10}, {11, 12}};
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c(0, 0), 58.0);
  EXPECT_EQ(c(0, 1), 64.0);
  EXPECT_EQ(c(1, 0), 139.0);
  EXPECT_EQ(c(1, 1), 154.0);
}

TEST(Ops, TransposedMultipliesAgree) {
  Rng rng(1);
  Matrix a = Matrix::Random(4, 3, rng);
  Matrix b = Matrix::Random(4, 5, rng);
  Matrix direct = MatMulTransA(a, b);
  Matrix via = MatMul(Transpose(a), b);
  ASSERT_TRUE(direct.SameShape(via));
  for (size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct[i], via[i], 1e-12);

  Matrix c = Matrix::Random(6, 3, rng);
  Matrix d = Matrix::Random(5, 3, rng);
  Matrix direct2 = MatMulTransB(c, d);
  Matrix via2 = MatMul(c, Transpose(d));
  for (size_t i = 0; i < direct2.size(); ++i)
    EXPECT_NEAR(direct2[i], via2[i], 1e-12);
}

TEST(Ops, ElementwiseAndAxpy) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  Matrix sum = Add(a, b);
  EXPECT_EQ(sum(1, 1), 12.0);
  Matrix diff = Sub(b, a);
  EXPECT_EQ(diff(0, 0), 4.0);
  Matrix prod = Hadamard(a, b);
  EXPECT_EQ(prod(1, 0), 21.0);
  Axpy(2.0, b, a);
  EXPECT_EQ(a(0, 0), 11.0);
}

TEST(Ops, RowSoftmaxRowsSumToOne) {
  Rng rng(2);
  Matrix a = Matrix::Random(5, 7, rng, -10, 10);
  Matrix s = RowSoftmax(a);
  for (size_t i = 0; i < s.rows(); ++i) {
    double total = 0.0;
    for (size_t j = 0; j < s.cols(); ++j) {
      EXPECT_GT(s(i, j), 0.0);
      total += s(i, j);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Ops, RowSoftmaxStableUnderLargeValues) {
  Matrix a = {{1000.0, 1000.0, 999.0}};
  Matrix s = RowSoftmax(a);
  EXPECT_TRUE(std::isfinite(s(0, 0)));
  EXPECT_GT(s(0, 0), s(0, 2));
}

TEST(Ops, ColMean) {
  Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  Matrix m = ColMean(a);
  EXPECT_EQ(m(0, 0), 3.0);
  EXPECT_EQ(m(0, 1), 4.0);
}

TEST(Ops, VectorKernels) {
  std::vector<double> a = {3, 4};
  std::vector<double> b = {4, 3};
  EXPECT_EQ(Dot(a, b), 24.0);
  EXPECT_EQ(Norm2(a), 5.0);
  EXPECT_NEAR(EuclideanDistance(a, b), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(a, b), 24.0 / 25.0, 1e-12);
  EXPECT_EQ(CosineSimilarity(a, {0, 0}), 0.0);
}

TEST(Ops, NormalizeL2) {
  std::vector<double> v = {3, 4};
  NormalizeL2(v);
  EXPECT_NEAR(Norm2(v), 1.0, 1e-12);
  std::vector<double> zero = {0, 0};
  NormalizeL2(zero);  // must not divide by zero
  EXPECT_EQ(zero[0], 0.0);
}

TEST(Ops, TopKIndices) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.9, 0.2};
  auto top = TopKIndices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // ties broken by smaller index
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
  EXPECT_EQ(TopKIndices(scores, 100).size(), scores.size());
}

TEST(Ops, SoftmaxInPlace) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  SoftmaxInPlace(v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
  EXPECT_LT(v[0], v[2]);
}

TEST(Ops, StackRows) {
  Matrix m = StackRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m(2, 1), 6.0);
}

TEST(Ops, AddRowBroadcast) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix bias = {{10, 20}};
  Matrix out = AddRowBroadcast(a, bias);
  EXPECT_EQ(out(0, 0), 11.0);
  EXPECT_EQ(out(1, 1), 24.0);
}

// Property sweep: matmul associativity-ish checks over random shapes.
class MatMulShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, DistributesOverAddition) {
  const auto [m, k, n] = GetParam();
  Rng rng(99);
  Matrix a = Matrix::Random(m, k, rng);
  Matrix b = Matrix::Random(k, n, rng);
  Matrix c = Matrix::Random(k, n, rng);
  Matrix lhs = MatMul(a, Add(b, c));
  Matrix rhs = Add(MatMul(a, b), MatMul(a, c));
  for (size_t i = 0; i < lhs.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 1, 7),
                                           std::make_tuple(8, 8, 8)));

}  // namespace
}  // namespace subrec::la
