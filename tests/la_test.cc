#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"
#include "la/ops.h"
#include "par/parallel.h"

namespace subrec::la {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m[i], 0.0);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(Matrix, IdentityAndReshape) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(1, 1), 1.0);
  EXPECT_EQ(id(1, 2), 0.0);
  Matrix m(2, 6, 1.0);
  m.Reshape(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
}

TEST(Matrix, RowRoundTrip) {
  Matrix m(2, 3);
  m.SetRow(1, {7, 8, 9});
  EXPECT_EQ(m.RowToVector(1), (std::vector<double>{7, 8, 9}));
}

TEST(Ops, MatMulMatchesHandComputation) {
  Matrix a = {{1, 2, 3}, {4, 5, 6}};
  Matrix b = {{7, 8}, {9, 10}, {11, 12}};
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c(0, 0), 58.0);
  EXPECT_EQ(c(0, 1), 64.0);
  EXPECT_EQ(c(1, 0), 139.0);
  EXPECT_EQ(c(1, 1), 154.0);
}

TEST(Ops, TransposedMultipliesAgree) {
  Rng rng(1);
  Matrix a = Matrix::Random(4, 3, rng);
  Matrix b = Matrix::Random(4, 5, rng);
  Matrix direct = MatMulTransA(a, b);
  Matrix via = MatMul(Transpose(a), b);
  ASSERT_TRUE(direct.SameShape(via));
  for (size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct[i], via[i], 1e-12);

  Matrix c = Matrix::Random(6, 3, rng);
  Matrix d = Matrix::Random(5, 3, rng);
  Matrix direct2 = MatMulTransB(c, d);
  Matrix via2 = MatMul(c, Transpose(d));
  for (size_t i = 0; i < direct2.size(); ++i)
    EXPECT_NEAR(direct2[i], via2[i], 1e-12);
}

TEST(Ops, ElementwiseAndAxpy) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  Matrix sum = Add(a, b);
  EXPECT_EQ(sum(1, 1), 12.0);
  Matrix diff = Sub(b, a);
  EXPECT_EQ(diff(0, 0), 4.0);
  Matrix prod = Hadamard(a, b);
  EXPECT_EQ(prod(1, 0), 21.0);
  Axpy(2.0, b, a);
  EXPECT_EQ(a(0, 0), 11.0);
}

TEST(Ops, RowSoftmaxRowsSumToOne) {
  Rng rng(2);
  Matrix a = Matrix::Random(5, 7, rng, -10, 10);
  Matrix s = RowSoftmax(a);
  for (size_t i = 0; i < s.rows(); ++i) {
    double total = 0.0;
    for (size_t j = 0; j < s.cols(); ++j) {
      EXPECT_GT(s(i, j), 0.0);
      total += s(i, j);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Ops, RowSoftmaxStableUnderLargeValues) {
  Matrix a = {{1000.0, 1000.0, 999.0}};
  Matrix s = RowSoftmax(a);
  EXPECT_TRUE(std::isfinite(s(0, 0)));
  EXPECT_GT(s(0, 0), s(0, 2));
}

TEST(Ops, ColMean) {
  Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  Matrix m = ColMean(a);
  EXPECT_EQ(m(0, 0), 3.0);
  EXPECT_EQ(m(0, 1), 4.0);
}

TEST(Ops, VectorKernels) {
  std::vector<double> a = {3, 4};
  std::vector<double> b = {4, 3};
  EXPECT_EQ(Dot(a, b), 24.0);
  EXPECT_EQ(Norm2(a), 5.0);
  EXPECT_NEAR(EuclideanDistance(a, b), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(a, b), 24.0 / 25.0, 1e-12);
  EXPECT_EQ(CosineSimilarity(a, {0, 0}), 0.0);
}

TEST(Ops, NormalizeL2) {
  std::vector<double> v = {3, 4};
  NormalizeL2(v);
  EXPECT_NEAR(Norm2(v), 1.0, 1e-12);
  std::vector<double> zero = {0, 0};
  NormalizeL2(zero);  // must not divide by zero
  EXPECT_EQ(zero[0], 0.0);
}

TEST(Ops, TopKIndices) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.9, 0.2};
  auto top = TopKIndices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // ties broken by smaller index
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
  EXPECT_EQ(TopKIndices(scores, 100).size(), scores.size());
}

TEST(Ops, SoftmaxInPlace) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  SoftmaxInPlace(v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
  EXPECT_LT(v[0], v[2]);
}

TEST(Ops, StackRows) {
  Matrix m = StackRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m(2, 1), 6.0);
}

TEST(Ops, AddRowBroadcast) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix bias = {{10, 20}};
  Matrix out = AddRowBroadcast(a, bias);
  EXPECT_EQ(out(0, 0), 11.0);
  EXPECT_EQ(out(1, 1), 24.0);
}

// Property sweep: matmul associativity-ish checks over random shapes.
class MatMulShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, DistributesOverAddition) {
  const auto [m, k, n] = GetParam();
  Rng rng(99);
  Matrix a = Matrix::Random(m, k, rng);
  Matrix b = Matrix::Random(k, n, rng);
  Matrix c = Matrix::Random(k, n, rng);
  Matrix lhs = MatMul(a, Add(b, c));
  Matrix rhs = Add(MatMul(a, b), MatMul(a, c));
  for (size_t i = 0; i < lhs.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 1, 7),
                                           std::make_tuple(8, 8, 8)));

// ---- Blocked GEMM: the cache-blocked/register-tiled path kicks in above
// a work cutoff; validate it against the naive triple loop on shapes that
// straddle the cutoff, including odd sizes that exercise the edge tiles.

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t k = 0; k < a.cols(); ++k)
      for (size_t j = 0; j < b.cols(); ++j)
        c(i, j) += a(i, k) * b(k, j);
  return c;
}

class BlockedGemmShapes
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(BlockedGemmShapes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(1234);
  Matrix a = Matrix::Random(m, k, rng);
  Matrix b = Matrix::Random(k, n, rng);
  const Matrix ref = NaiveMatMul(a, b);
  const Matrix c = MatMul(a, b);
  ASSERT_EQ(c.rows(), ref.rows());
  ASSERT_EQ(c.cols(), ref.cols());
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-9);
  // Transposed variants route through the same kernel above the cutoff.
  const Matrix ta = MatMulTransA(Transpose(a), b);
  const Matrix tb = MatMulTransB(a, Transpose(b));
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(ta[i], ref[i], 1e-9);
    EXPECT_NEAR(tb[i], ref[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedGemmShapes,
    ::testing::Values(std::make_tuple(31, 33, 29),    // below cutoff, odd
                      std::make_tuple(32, 32, 32),    // at the boundary
                      std::make_tuple(64, 64, 64),    // blocked, full tiles
                      std::make_tuple(67, 61, 59),    // blocked, edge tiles
                      std::make_tuple(128, 37, 77),   // tall-skinny-wide
                      std::make_tuple(1, 4096, 64),   // single-row blocked
                      std::make_tuple(129, 129, 129)  // all edges at once
                      ));

TEST(BlockedGemm, BitIdenticalAcrossThreadCounts) {
  Rng rng(77);
  Matrix a = Matrix::Random(150, 130, rng);
  Matrix b = Matrix::Random(130, 140, rng);
  std::vector<Matrix> outs;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    par::ScopedNumThreads scoped(threads);
    outs.push_back(MatMul(a, b));
  }
  for (size_t v = 1; v < outs.size(); ++v) {
    ASSERT_EQ(outs[0].size(), outs[v].size());
    for (size_t i = 0; i < outs[0].size(); ++i)
      ASSERT_EQ(outs[0][i], outs[v][i]) << "flat index " << i;
  }
}

// ---- Degenerate shapes: zero-dimension inputs must not read out of
// bounds or divide by zero anywhere in the op layer.

TEST(OpsDegenerate, ZeroDimMatMulShapes) {
  Matrix a(0, 5);
  Matrix b(5, 3);
  const Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 3u);

  Matrix d(4, 0);
  Matrix e(0, 3);
  const Matrix f = MatMul(d, e);  // inner dimension zero: all-zero result
  EXPECT_EQ(f.rows(), 4u);
  EXPECT_EQ(f.cols(), 3u);
  for (size_t i = 0; i < f.size(); ++i) EXPECT_EQ(f[i], 0.0);

  Matrix g(2, 4);
  Matrix h(4, 0);
  const Matrix i = MatMul(g, h);
  EXPECT_EQ(i.rows(), 2u);
  EXPECT_EQ(i.cols(), 0u);
}

TEST(OpsDegenerate, RowSoftmaxZeroColumns) {
  Matrix a(3, 0);
  const Matrix s = RowSoftmax(a);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_EQ(s.cols(), 0u);
}

TEST(OpsDegenerate, ColMeanZeroRowsDies) {
  Matrix a(0, 4);
  EXPECT_DEATH(ColMean(a), "rows");
}

}  // namespace
}  // namespace subrec::la
