#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "la/ann_kernel.h"
#include "la/matrix.h"
#include "la/ops.h"
#include "la/score_math.h"
#include "la/serve_kernel.h"
#include "par/parallel.h"

namespace subrec::la {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m[i], 0.0);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(Matrix, IdentityAndReshape) {
  Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(1, 1), 1.0);
  EXPECT_EQ(id(1, 2), 0.0);
  Matrix m(2, 6, 1.0);
  m.Reshape(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
}

TEST(Matrix, RowRoundTrip) {
  Matrix m(2, 3);
  m.SetRow(1, {7, 8, 9});
  EXPECT_EQ(m.RowToVector(1), (std::vector<double>{7, 8, 9}));
}

TEST(Ops, MatMulMatchesHandComputation) {
  Matrix a = {{1, 2, 3}, {4, 5, 6}};
  Matrix b = {{7, 8}, {9, 10}, {11, 12}};
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c(0, 0), 58.0);
  EXPECT_EQ(c(0, 1), 64.0);
  EXPECT_EQ(c(1, 0), 139.0);
  EXPECT_EQ(c(1, 1), 154.0);
}

TEST(Ops, TransposedMultipliesAgree) {
  Rng rng(1);
  Matrix a = Matrix::Random(4, 3, rng);
  Matrix b = Matrix::Random(4, 5, rng);
  Matrix direct = MatMulTransA(a, b);
  Matrix via = MatMul(Transpose(a), b);
  ASSERT_TRUE(direct.SameShape(via));
  for (size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct[i], via[i], 1e-12);

  Matrix c = Matrix::Random(6, 3, rng);
  Matrix d = Matrix::Random(5, 3, rng);
  Matrix direct2 = MatMulTransB(c, d);
  Matrix via2 = MatMul(c, Transpose(d));
  for (size_t i = 0; i < direct2.size(); ++i)
    EXPECT_NEAR(direct2[i], via2[i], 1e-12);
}

TEST(Ops, ElementwiseAndAxpy) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  Matrix sum = Add(a, b);
  EXPECT_EQ(sum(1, 1), 12.0);
  Matrix diff = Sub(b, a);
  EXPECT_EQ(diff(0, 0), 4.0);
  Matrix prod = Hadamard(a, b);
  EXPECT_EQ(prod(1, 0), 21.0);
  Axpy(2.0, b, a);
  EXPECT_EQ(a(0, 0), 11.0);
}

TEST(Ops, RowSoftmaxRowsSumToOne) {
  Rng rng(2);
  Matrix a = Matrix::Random(5, 7, rng, -10, 10);
  Matrix s = RowSoftmax(a);
  for (size_t i = 0; i < s.rows(); ++i) {
    double total = 0.0;
    for (size_t j = 0; j < s.cols(); ++j) {
      EXPECT_GT(s(i, j), 0.0);
      total += s(i, j);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Ops, RowSoftmaxStableUnderLargeValues) {
  Matrix a = {{1000.0, 1000.0, 999.0}};
  Matrix s = RowSoftmax(a);
  EXPECT_TRUE(std::isfinite(s(0, 0)));
  EXPECT_GT(s(0, 0), s(0, 2));
}

TEST(Ops, ColMean) {
  Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  Matrix m = ColMean(a);
  EXPECT_EQ(m(0, 0), 3.0);
  EXPECT_EQ(m(0, 1), 4.0);
}

TEST(Ops, VectorKernels) {
  std::vector<double> a = {3, 4};
  std::vector<double> b = {4, 3};
  EXPECT_EQ(Dot(a, b), 24.0);
  EXPECT_EQ(Norm2(a), 5.0);
  EXPECT_NEAR(EuclideanDistance(a, b), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity(a, b), 24.0 / 25.0, 1e-12);
  EXPECT_EQ(CosineSimilarity(a, {0, 0}), 0.0);
}

TEST(Ops, NormalizeL2) {
  std::vector<double> v = {3, 4};
  NormalizeL2(v);
  EXPECT_NEAR(Norm2(v), 1.0, 1e-12);
  std::vector<double> zero = {0, 0};
  NormalizeL2(zero);  // must not divide by zero
  EXPECT_EQ(zero[0], 0.0);
}

TEST(Ops, TopKIndices) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.9, 0.2};
  auto top = TopKIndices(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // ties broken by smaller index
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
  EXPECT_EQ(TopKIndices(scores, 100).size(), scores.size());
}

TEST(Ops, SoftmaxInPlace) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  SoftmaxInPlace(v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
  EXPECT_LT(v[0], v[2]);
}

TEST(Ops, StackRows) {
  Matrix m = StackRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m(2, 1), 6.0);
}

TEST(Ops, AddRowBroadcast) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix bias = {{10, 20}};
  Matrix out = AddRowBroadcast(a, bias);
  EXPECT_EQ(out(0, 0), 11.0);
  EXPECT_EQ(out(1, 1), 24.0);
}

// Property sweep: matmul associativity-ish checks over random shapes.
class MatMulShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, DistributesOverAddition) {
  const auto [m, k, n] = GetParam();
  Rng rng(99);
  Matrix a = Matrix::Random(m, k, rng);
  Matrix b = Matrix::Random(k, n, rng);
  Matrix c = Matrix::Random(k, n, rng);
  Matrix lhs = MatMul(a, Add(b, c));
  Matrix rhs = Add(MatMul(a, b), MatMul(a, c));
  for (size_t i = 0; i < lhs.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 1, 7),
                                           std::make_tuple(8, 8, 8)));

// ---- Blocked GEMM: the cache-blocked/register-tiled path kicks in above
// a work cutoff; validate it against the naive triple loop on shapes that
// straddle the cutoff, including odd sizes that exercise the edge tiles.

Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t k = 0; k < a.cols(); ++k)
      for (size_t j = 0; j < b.cols(); ++j)
        c(i, j) += a(i, k) * b(k, j);
  return c;
}

class BlockedGemmShapes
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(BlockedGemmShapes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(1234);
  Matrix a = Matrix::Random(m, k, rng);
  Matrix b = Matrix::Random(k, n, rng);
  const Matrix ref = NaiveMatMul(a, b);
  const Matrix c = MatMul(a, b);
  ASSERT_EQ(c.rows(), ref.rows());
  ASSERT_EQ(c.cols(), ref.cols());
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-9);
  // Transposed variants route through the same kernel above the cutoff.
  const Matrix ta = MatMulTransA(Transpose(a), b);
  const Matrix tb = MatMulTransB(a, Transpose(b));
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(ta[i], ref[i], 1e-9);
    EXPECT_NEAR(tb[i], ref[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedGemmShapes,
    ::testing::Values(std::make_tuple(31, 33, 29),    // below cutoff, odd
                      std::make_tuple(32, 32, 32),    // at the boundary
                      std::make_tuple(64, 64, 64),    // blocked, full tiles
                      std::make_tuple(67, 61, 59),    // blocked, edge tiles
                      std::make_tuple(128, 37, 77),   // tall-skinny-wide
                      std::make_tuple(1, 4096, 64),   // single-row blocked
                      std::make_tuple(129, 129, 129)  // all edges at once
                      ));

TEST(BlockedGemm, BitIdenticalAcrossThreadCounts) {
  Rng rng(77);
  Matrix a = Matrix::Random(150, 130, rng);
  Matrix b = Matrix::Random(130, 140, rng);
  std::vector<Matrix> outs;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    par::ScopedNumThreads scoped(threads);
    outs.push_back(MatMul(a, b));
  }
  for (size_t v = 1; v < outs.size(); ++v) {
    ASSERT_EQ(outs[0].size(), outs[v].size());
    for (size_t i = 0; i < outs[0].size(); ++i)
      ASSERT_EQ(outs[0][i], outs[v][i]) << "flat index " << i;
  }
}

// ---- Degenerate shapes: zero-dimension inputs must not read out of
// bounds or divide by zero anywhere in the op layer.

TEST(OpsDegenerate, ZeroDimMatMulShapes) {
  Matrix a(0, 5);
  Matrix b(5, 3);
  const Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 0u);
  EXPECT_EQ(c.cols(), 3u);

  Matrix d(4, 0);
  Matrix e(0, 3);
  const Matrix f = MatMul(d, e);  // inner dimension zero: all-zero result
  EXPECT_EQ(f.rows(), 4u);
  EXPECT_EQ(f.cols(), 3u);
  for (size_t i = 0; i < f.size(); ++i) EXPECT_EQ(f[i], 0.0);

  Matrix g(2, 4);
  Matrix h(4, 0);
  const Matrix i = MatMul(g, h);
  EXPECT_EQ(i.rows(), 2u);
  EXPECT_EQ(i.cols(), 0u);
}

TEST(OpsDegenerate, RowSoftmaxZeroColumns) {
  Matrix a(3, 0);
  const Matrix s = RowSoftmax(a);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_EQ(s.cols(), 0u);
}

TEST(OpsDegenerate, ColMeanZeroRowsDies) {
  Matrix a(0, 4);
  EXPECT_DEATH(ColMean(a), "rows");
}

// --- ScoreExp / ScoreSigmoid ----------------------------------------------

int64_t UlpDistance(double a, double b) {
  int64_t ia, ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  // Map the sign-magnitude bit patterns onto a monotone integer line.
  if (ia < 0) ia = INT64_MIN - ia;
  if (ib < 0) ib = INT64_MIN - ib;
  return ia > ib ? ia - ib : ib - ia;
}

TEST(ScoreExp, TracksLibmWithinAFewUlp) {
  // The serving exp is its own deterministic implementation, so it need
  // not equal libm bit-for-bit — but it must agree to a few ulp across the
  // whole non-clamped range or scores would visibly drift from the
  // mathematical sigmoid.
  Rng rng(7);
  int64_t worst = 0;
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.Uniform(-700.0, 700.0);
    worst = std::max(worst, UlpDistance(ScoreExp(x), std::exp(x)));
  }
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.Uniform(-4.0, 4.0);  // the logit hot range
    worst = std::max(worst, UlpDistance(ScoreExp(x), std::exp(x)));
  }
  EXPECT_LE(worst, 4) << "ScoreExp drifted from exp";
}

TEST(ScoreExp, KnownValuesAndClampEdges) {
  EXPECT_EQ(ScoreExp(0.0), 1.0);
  EXPECT_EQ(ScoreExp(-0.0), 1.0);
  // The clamp keeps every result a normal, finite double: overflow and
  // underflow inputs saturate at e^{+/-708} instead of inf/0.
  const double top = ScoreExp(708.0);
  EXPECT_TRUE(std::isfinite(top));
  EXPECT_EQ(ScoreExp(709.0), top);
  EXPECT_EQ(ScoreExp(1e300), top);
  const double bottom = ScoreExp(-708.0);
  EXPECT_GT(bottom, 0.0);
  EXPECT_EQ(ScoreExp(-709.0), bottom);
  EXPECT_EQ(ScoreExp(-1e300), bottom);
  // Monotone on a fine grid — table/polynomial seams must not wiggle.
  double prev = ScoreExp(-20.0);
  for (int i = 1; i <= 80000; ++i) {
    const double x = -20.0 + static_cast<double>(i) * (40.0 / 80000.0);
    const double y = ScoreExp(x);
    ASSERT_GE(y, prev) << "non-monotone at x=" << x;
    prev = y;
  }
}

TEST(ScoreSigmoid, RangeAndSymmetryAnchors) {
  EXPECT_EQ(ScoreSigmoid(0.0), 0.5);
  Rng rng(8);
  // Strictly interior while exp(-|x|) is above one ulp of 1.0.
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-30.0, 30.0);
    const double s = ScoreSigmoid(x);
    ASSERT_GT(s, 0.0);
    ASSERT_LT(s, 1.0);
  }
  // Past that, the upper side rounds to exactly 1.0 (1 + 2^-54 is 1.0 in
  // doubles) while the lower side stays a positive denormal-free value —
  // the exp clamp guarantees no inf/NaN either way.
  EXPECT_EQ(ScoreSigmoid(1e308), 1.0);
  EXPECT_GT(ScoreSigmoid(-1e308), 0.0);
}

// --- serve kernels --------------------------------------------------------

TEST(Dot, PointerOverloadIsTheVectorOverload) {
  Rng rng(9);
  std::vector<double> a(37), b(37);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
  }
  EXPECT_EQ(Dot(a, b), Dot(a.data(), b.data(), a.size()));
  EXPECT_EQ(Dot(a.data(), b.data(), 0), 0.0);
}

TEST(ServeKernel, GatherTransposeLaysRowsOutAsColumns) {
  Matrix slab(5, 3);
  Rng rng(10);
  for (size_t i = 0; i < slab.size(); ++i) slab[i] = rng.Gaussian();
  const std::vector<int32_t> ids = {4, 0, 2};
  std::vector<double> bt(slab.cols() * ids.size());
  ServeGatherTranspose(slab.data(), slab.cols(), ids.data(), ids.size(),
                       bt.data());
  for (size_t i = 0; i < ids.size(); ++i)
    for (size_t d = 0; d < slab.cols(); ++d)
      EXPECT_EQ(bt[d * ids.size() + i],
                slab(static_cast<size_t>(ids[i]), d));
}

TEST(ServeKernel, GemmIsBitIdenticalToScalarDot) {
  // The whole batched-scorer determinism argument rests on this: one GEMM
  // cell must be EXACTLY the ascending-k scalar dot product, for every
  // kernel the dispatcher might pick, including the blocked edge paths.
  Rng rng(11);
  for (const auto& [m, k, n] :
       {std::tuple<size_t, size_t, size_t>{1, 1, 1},
        {3, 5, 7},
        {4, 16, 16},
        {5, 12, 33},
        {16, 32, 128},
        {7, 17, 130}}) {
    std::vector<double> a(m * k), bt(k * n), c(m * n);
    for (double& x : a) x = rng.Gaussian();
    for (double& x : bt) x = rng.Gaussian();
    ServeGemm(a.data(), k, bt.data(), n, c.data(), n, m, k, n);
    std::vector<double> col(k);
    for (size_t j = 0; j < n; ++j) {
      for (size_t d = 0; d < k; ++d) col[d] = bt[d * n + j];
      for (size_t i = 0; i < m; ++i) {
        ASSERT_EQ(c[i * n + j], Dot(a.data() + i * k, col.data(), k))
            << m << "x" << k << "x" << n << " cell (" << i << "," << j
            << ")";
      }
    }
  }
}

TEST(AnnKernel, DotBatchIsBitIdenticalToScalarDot) {
  // The ANN traversal's determinism rests on this the way the batched
  // scorer's rests on ServeGemm: every batched distance must be EXACTLY
  // la::Dot against the gathered row, whichever kernel the dispatcher
  // picked. Dims sweep the 8-block/4-block/scalar-tail boundaries of the
  // transpose kernel, counts sweep the lane-block boundaries, and the
  // node list is scattered and repeats rows (the stamp filter upstream
  // normally dedups, but the kernel must not rely on it).
  Rng rng(13);
  for (const size_t dim : {1u, 3u, 4u, 7u, 8u, 11u, 16u, 24u, 48u, 50u}) {
    constexpr size_t kRows = 64;
    std::vector<double> slab(kRows * dim), query(dim);
    for (double& x : slab) x = rng.Gaussian();
    for (double& x : query) x = rng.Gaussian();
    for (const size_t count : {1u, 2u, 5u, 8u, 9u, 16u, 33u}) {
      std::vector<int32_t> nodes(count);
      for (int32_t& node : nodes)
        node = static_cast<int32_t>(rng.UniformInt(kRows));
      std::vector<double> got(count, -1.0);
      AnnDotBatch(query.data(), slab.data(), dim, nodes.data(), count,
                  got.data());
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(got[i],
                  Dot(query.data(),
                      slab.data() + static_cast<size_t>(nodes[i]) * dim, dim))
            << "dim " << dim << " count " << count << " slot " << i;
      }
    }
  }
}

TEST(ServeKernel, SigmoidMeanColumnsIsBitIdenticalToScalarLoop) {
  // Vectorized epilogue vs the oracle's ascending-profile accumulate +
  // divide. Widths around the SIMD register boundaries catch remainder
  // lanes; the divide (never a reciprocal multiply) is what keeps
  // non-power-of-two profile sizes exact.
  Rng rng(12);
  for (const size_t m : {1u, 3u, 7u}) {
    for (const size_t n : {1u, 4u, 8u, 9u, 15u, 16u, 17u, 64u, 100u}) {
      std::vector<double> logits(m * n), got(n);
      for (double& x : logits) x = rng.Uniform(-30.0, 30.0);
      ServeSigmoidMeanColumns(logits.data(), n, m, n,
                              static_cast<double>(m), got.data());
      for (size_t j = 0; j < n; ++j) {
        double total = 0.0;
        for (size_t i = 0; i < m; ++i)
          total += ScoreSigmoid(logits[i * n + j]);
        ASSERT_EQ(got[j], total / static_cast<double>(m))
            << m << "x" << n << " column " << j;
      }
    }
  }
}

}  // namespace
}  // namespace subrec::la
