// MUST NOT COMPILE under the clang-dev preset: acquires a mutex that the
// calling thread already holds (our Mutex wraps std::mutex, which makes a
// recursive Lock undefined behavior at runtime — the analysis rejects it
// statically). Registered as a WILL_FAIL build ctest.
#include "common/mutex.h"

int ThreadSafetyDoubleAcquire() {
  subrec::common::Mutex mu;
  mu.Lock();
  mu.Lock();  // error: acquiring mutex 'mu' that is already held
  mu.Unlock();
  mu.Unlock();
  return 0;
}
