// MUST NOT COMPILE under the clang-dev preset: reads a SUBREC_GUARDED_BY
// field without holding its mutex. Registered as a WILL_FAIL build ctest —
// if this TU ever compiles, the thread-safety gate is off.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

struct Account {
  subrec::common::Mutex mu;
  int balance SUBREC_GUARDED_BY(mu) = 0;
};

}  // namespace

int ThreadSafetyUnguardedAccess() {
  Account account;
  return account.balance;  // error: requires holding mutex 'account.mu'
}
