// MUST NOT COMPILE under the clang-dev preset: returns while still holding
// a mutex acquired in the function body (a leaked lock — every later
// Lock() would deadlock). Registered as a WILL_FAIL build ctest.
#include "common/mutex.h"

int ThreadSafetyMissingRelease() {
  subrec::common::Mutex mu;
  mu.Lock();
  return 0;  // error: mutex 'mu' is still held at the end of function
}
