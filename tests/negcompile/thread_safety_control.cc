// Positive control for the thread-safety negative-compile suite: the same
// shape of code as the bad TUs, but with the lock protocol followed. This
// target is part of the normal build, so if it ever fails the harness —
// not the analysis — is broken, and the WILL_FAIL results of the bad TUs
// are meaningless.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

struct Account {
  subrec::common::Mutex mu;
  int balance SUBREC_GUARDED_BY(mu) = 0;
};

int Deposit(Account* account, int amount) {
  subrec::common::MutexLock lock(&account->mu);
  account->balance += amount;
  return account->balance;
}

int ReadLocked(Account* account) SUBREC_REQUIRES(account->mu) {
  return account->balance;
}

int LockAndRead(Account* account) {
  account->mu.Lock();
  const int balance = ReadLocked(account);
  account->mu.Unlock();
  return balance;
}

}  // namespace

int ThreadSafetyControl() {
  Account account;
  Deposit(&account, 5);
  return LockAndRead(&account);
}
