#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ann/hnsw_index.h"
#include "common/file_util.h"
#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "graph/academic_graph.h"
#include "obs/metrics.h"
#include "par/parallel.h"
#include "rec/nprec.h"
#include "rec/recommender.h"
#include "serve/candidate_index.h"
#include "serve/freeze.h"
#include "serve/frozen_scorer.h"
#include "serve/lru_cache.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "serve/thread_pool.h"
#include "text/hashed_ngram_encoder.h"

namespace subrec::serve {
namespace {

constexpr int kSplitYear = 2014;

/// A tiny trained world: corpus, graph, naive frozen-encoder subspace
/// embeddings (as in rec_test), and a fitted fast NPRec — everything
/// FreezeNPRec needs, for any dataset preset.
struct TestWorld {
  datagen::GeneratedDataset dataset;
  graph::GraphIndex graph;
  rec::SubspaceEmbeddings subspace;
  std::vector<std::vector<double>> text;
  rec::RecContext ctx;
  std::unique_ptr<rec::NPRec> model;
};

std::unique_ptr<TestWorld> BuildWorld(
    const datagen::CorpusGeneratorOptions& corpus_options) {
  auto world = std::make_unique<TestWorld>();
  auto generated = datagen::GenerateCorpus(corpus_options);
  SUBREC_CHECK(generated.ok()) << generated.status().ToString();
  world->dataset = std::move(generated).value();
  const corpus::Corpus& corpus = world->dataset.corpus;
  const auto split = datagen::SplitByYear(corpus, kSplitYear);
  SUBREC_CHECK(!split.train.empty());
  SUBREC_CHECK(!split.test.empty());

  graph::GraphBuildOptions graph_options;
  graph_options.citation_year_cutoff = kSplitYear;
  world->graph = graph::BuildAcademicGraph(corpus, graph_options);

  text::HashedNgramEncoderOptions enc_options;
  enc_options.dim = 16;
  text::HashedNgramEncoder encoder(enc_options);
  for (const auto& p : corpus.papers) {
    std::vector<std::vector<double>> subs(3, std::vector<double>(16, 0.0));
    std::vector<int> counts(3, 0);
    for (const auto& s : p.abstract_sentences) {
      const size_t role =
          s.role >= 0 && s.role < 3 ? static_cast<size_t>(s.role) : 0;
      const auto v = encoder.Encode(s.text);
      for (size_t j = 0; j < v.size(); ++j) subs[role][j] += v[j];
      ++counts[role];
    }
    std::vector<double> fused(16, 0.0);
    for (size_t k = 0; k < 3; ++k) {
      if (counts[k] > 0)
        for (double& x : subs[k]) x /= counts[k];
      for (size_t j = 0; j < 16; ++j) fused[j] += subs[k][j] / 3.0;
    }
    world->subspace.push_back(std::move(subs));
    world->text.push_back(std::move(fused));
  }

  world->ctx.corpus = &corpus;
  world->ctx.graph = &world->graph;
  world->ctx.split_year = kSplitYear;
  world->ctx.train_papers = split.train;
  world->ctx.test_papers = split.test;
  world->ctx.paper_text = &world->text;

  rec::NPRecOptions options;
  options.embed_dim = 12;
  options.neighbor_samples = 4;
  options.epochs = 1;
  options.sampler.max_positives = 120;
  options.sampler.negatives_per_positive = 3;
  world->model = std::make_unique<rec::NPRec>(options, &world->subspace);
  const Status fit = world->model->Fit(world->ctx);
  SUBREC_CHECK(fit.ok()) << fit.ToString();
  return world;
}

/// A handcrafted 4-paper, 2-user snapshot for format/index tests.
SnapshotData TinyData() {
  SnapshotData d;
  d.model_name = "NPRec";
  d.dataset = "tiny";
  d.split_year = 2014;
  d.interest = {{1.0, 0.0}, {0.5, 0.5}, {0.0, 1.0}, {0.25, -0.75}};
  d.influence = {{0.2, 0.1}, {-0.5, 1.0}, {1.0, 1.0}, {0.0, 0.0}};
  d.text = {{0.1}, {0.2}, {0.3}, {0.4}};
  d.years = {2012, 2013, 2015, 2016};
  d.disciplines = {0, 1, 0, 1};
  d.topics = {0, 1, 0, 1};
  d.profiles = {{0}, {1, 0}};
  return d;
}

// --- CRC and file I/O -----------------------------------------------------

TEST(Crc32, KnownAnswer) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(FileUtil, RoundTripsBinaryContent) {
  const std::string path = ::testing::TempDir() + "/subrec_file_util_test.bin";
  std::string content = "hello";
  content.push_back('\0');
  content += "\n\r binary \x01\xff tail";
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  const auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), content);
}

TEST(FileUtil, MissingFileIsNotFound) {
  const auto read = ReadFileToString("/nonexistent/subrec/nope.bin");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 500; ++i)
      pool.Submit([&count] { count.fetch_add(1); });
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ReturnsResultsThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(pool.SubmitWithResult([i] { return i * i; }));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ExceptionsLandInTheFuture) {
  ThreadPool pool(2);
  auto bad = pool.SubmitWithResult(
      []() -> int { throw std::runtime_error("task failed"); });
  auto good = pool.SubmitWithResult([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 7);  // the worker survived the throwing task
}

TEST(ThreadPool, ShutdownIsIdempotentAndDrains) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&count] { count.fetch_add(1); });
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPool, ManyProducersOnePool) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 8; ++t) {
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < 200; ++i)
        pool.Submit([&count] { count.fetch_add(1); });
    });
  }
  for (auto& t : producers) t.join();
  pool.Shutdown();
  EXPECT_EQ(count.load(), 1600);
}

// --- ShardedLruCache ------------------------------------------------------

TEST(LruCache, PutGetOverwrite) {
  ShardedLruCache<int, std::string> cache(8, 2);
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, "a");
  cache.Put(2, "b");
  EXPECT_EQ(cache.Get(1).value(), "a");
  cache.Put(1, "a2");
  EXPECT_EQ(cache.Get(1).value(), "a2");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  // One shard so the recency order is global and deterministic.
  ShardedLruCache<int, int> cache(2, 1);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_TRUE(cache.Get(1).has_value());  // refresh 1; 2 is now oldest
  cache.Put(3, 30);                       // evicts 2
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
}

TEST(LruCache, ClearInvalidatesEverything) {
  ShardedLruCache<int, int> cache(64, 4);
  for (int i = 0; i < 32; ++i) cache.Put(i, i);
  EXPECT_GT(cache.size(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(5).has_value());
}

/// ThreadPool + cache hammer: concurrent Get/Put/Clear across shards. Run
/// under the tsan preset this is the serving-path race detector.
TEST(LruCache, ConcurrentHammer) {
  ShardedLruCache<uint64_t, std::vector<int>> cache(256, 8);
  ThreadPool pool(8);
  std::atomic<int> done{0};
  for (int t = 0; t < 16; ++t) {
    pool.Submit([&cache, &done, t] {
      for (uint64_t i = 0; i < 500; ++i) {
        const uint64_t key = (static_cast<uint64_t>(t) << 32) | (i % 97);
        if (i % 3 == 0) cache.Put(key, std::vector<int>{t, static_cast<int>(i)});
        auto hit = cache.Get(key);
        if (hit.has_value()) {
          ASSERT_EQ(hit->size(), 2u);
          ASSERT_EQ((*hit)[0], t);
        }
        if (i % 251 == 0) cache.Clear();
      }
      done.fetch_add(1);
    });
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 16);
  EXPECT_GT(cache.hits() + cache.misses(), 0);
}

// --- Snapshot format ------------------------------------------------------

TEST(Snapshot, RoundTripsTinyDataExactly) {
  const SnapshotData data = TinyData();
  SnapshotWriter writer(data);
  const auto parsed = SnapshotReader::Parse(writer.bytes());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const SnapshotData& out = parsed.value();
  EXPECT_EQ(out.model_name, data.model_name);
  EXPECT_EQ(out.dataset, data.dataset);
  EXPECT_EQ(out.split_year, data.split_year);
  EXPECT_EQ(out.interest, data.interest);  // bit-exact doubles
  EXPECT_EQ(out.influence, data.influence);
  EXPECT_EQ(out.text, data.text);
  EXPECT_EQ(out.years, data.years);
  EXPECT_EQ(out.disciplines, data.disciplines);
  EXPECT_EQ(out.topics, data.topics);
  EXPECT_EQ(out.profiles, data.profiles);
}

TEST(Snapshot, RoundTripsThroughAFile) {
  const std::string path = ::testing::TempDir() + "/subrec_snapshot_test.snap";
  SnapshotWriter writer(TinyData());
  ASSERT_TRUE(writer.WriteFile(path).ok());
  const auto parsed = SnapshotReader::ReadFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().interest, TinyData().interest);
}

TEST(Snapshot, RejectsCorruptInputWithoutCrashing) {
  SnapshotWriter writer(TinyData());
  const std::string& good = writer.bytes();

  EXPECT_FALSE(SnapshotReader::Parse("").ok());
  EXPECT_FALSE(SnapshotReader::Parse("short").ok());
  // Truncated mid-header and mid-payload.
  EXPECT_FALSE(SnapshotReader::Parse(good.substr(0, 10)).ok());
  EXPECT_FALSE(SnapshotReader::Parse(good.substr(0, good.size() - 3)).ok());

  // Bad magic.
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(SnapshotReader::Parse(bad_magic).ok());

  // Unsupported version (byte 8 is the version LSB).
  std::string bad_version = good;
  bad_version[8] = 99;
  const auto version_result = SnapshotReader::Parse(bad_version);
  ASSERT_FALSE(version_result.ok());
  EXPECT_NE(version_result.status().message().find("version"),
            std::string::npos);

  // Every single-byte payload corruption must trip the checksum.
  const size_t header_size = 24;
  for (size_t pos = header_size; pos < good.size() - 4; pos += 37) {
    std::string corrupt = good;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5A);
    EXPECT_FALSE(SnapshotReader::Parse(corrupt).ok()) << "at byte " << pos;
  }
}

TEST(Snapshot, RejectsLyingSectionLengths) {
  // Hand-assemble a snapshot whose (checksummed) payload declares a section
  // far larger than the payload: the CRC passes, the cursor must not.
  auto append_u32 = [](std::string* s, uint32_t v) {
    for (int i = 0; i < 4; ++i)
      s->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  auto append_u64 = [](std::string* s, uint64_t v) {
    for (int i = 0; i < 8; ++i)
      s->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  std::string payload;
  append_u32(&payload, 2);                    // interest section tag
  append_u64(&payload, 1ULL << 40);           // absurd section size
  std::string bytes;
  append_u64(&bytes, 0x31504E5352425553ULL);  // magic
  append_u32(&bytes, 1);                      // version
  append_u32(&bytes, 1);                      // section count
  append_u64(&bytes, payload.size());
  bytes += payload;
  append_u32(&bytes, Crc32(payload));
  const auto parsed = SnapshotReader::Parse(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kOutOfRange);
}

TEST(Snapshot, RejectsCraftedMatrixDimensionsWithoutCrashing) {
  // Valid-CRC snapshots whose interest-matrix header lies about its
  // dimensions. Each must come back as an error Status — not a SIGFPE
  // from 8*cols wrapping to zero, not a bad_alloc from a giant fill.
  auto append_u32 = [](std::string* s, uint32_t v) {
    for (int i = 0; i < 4; ++i)
      s->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  auto append_u64 = [](std::string* s, uint64_t v) {
    for (int i = 0; i < 8; ++i)
      s->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  auto craft = [&](uint64_t rows, uint64_t cols) {
    std::string payload;
    append_u32(&payload, 2);  // interest section tag
    append_u64(&payload, 16);  // section body: just the two dimension words
    append_u64(&payload, rows);
    append_u64(&payload, cols);
    std::string bytes;
    append_u64(&bytes, 0x31504E5352425553ULL);  // magic
    append_u32(&bytes, 1);                      // version
    append_u32(&bytes, 1);                      // section count
    append_u64(&bytes, payload.size());
    bytes += payload;
    append_u32(&bytes, Crc32(payload));
    return bytes;
  };

  // cols == 2^61 makes 8*cols wrap to 0 in a naive guard.
  auto r = SnapshotReader::Parse(craft(1, uint64_t{1} << 61));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  // rows == 0 must not admit an arbitrary cols (fill-temporary alloc).
  r = SnapshotReader::Parse(craft(0, uint64_t{1} << 40));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  // cols == 0 must not admit an arbitrary rows (empty-row flood).
  r = SnapshotReader::Parse(craft(uint64_t{1} << 50, 0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  // Plausible dimensions with no value bytes behind them: truncated.
  EXPECT_FALSE(SnapshotReader::Parse(craft(2, 2)).ok());
  // The degenerate-but-honest 0x0 matrix must still get past the
  // dimension guards (every other array is consistently empty too, so
  // the whole snapshot parses).
  r = SnapshotReader::Parse(craft(0, 0));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().interest.empty());
}

TEST(Snapshot, RejectsInconsistentArrays) {
  SnapshotData skew = TinyData();
  skew.years.pop_back();
  SnapshotWriter writer(skew);
  EXPECT_FALSE(SnapshotReader::Parse(writer.bytes()).ok());

  SnapshotData bad_profile = TinyData();
  bad_profile.profiles[0][0] = 99;  // paper id out of range
  SnapshotWriter writer2(bad_profile);
  EXPECT_FALSE(SnapshotReader::Parse(writer2.bytes()).ok());
}

// --- ANN section ----------------------------------------------------------

/// A real serialized HnswIndex over TinyData's influence rows.
std::string TinyAnnBytes() {
  const SnapshotData d = TinyData();
  std::vector<int32_t> ids;
  std::vector<double> flat;
  for (size_t i = 0; i < d.influence.rows(); ++i) {
    ids.push_back(static_cast<int32_t>(i));
    const double* row = d.influence.row_data(i);
    flat.insert(flat.end(), row, row + d.influence.cols());
  }
  auto built = ann::HnswIndex::Build(ids, flat, 2, ann::HnswOptions{});
  SUBREC_CHECK(built.ok()) << built.status().ToString();
  return built.value()->Serialize();
}

TEST(Snapshot, AnnSectionRoundTripsAndStaysOptional) {
  // Without an index the format is byte-identical to the pre-ANN layout:
  // no empty section is emitted, and parsing yields an empty ann_index.
  const std::string base = SnapshotWriter(TinyData()).bytes();
  auto base_parsed = SnapshotReader::Parse(base);
  ASSERT_TRUE(base_parsed.ok());
  EXPECT_TRUE(base_parsed.value().ann_index.empty());

  SnapshotData with_ann = TinyData();
  with_ann.ann_index = TinyAnnBytes();
  const std::string bytes = SnapshotWriter(with_ann).bytes();
  EXPECT_GT(bytes.size(), base.size());
  auto parsed = SnapshotReader::Parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().ann_index, with_ann.ann_index);
  EXPECT_EQ(parsed.value().interest, with_ann.interest);
}

TEST(Snapshot, SkipsUnknownFutureSections) {
  // Forward compatibility: a reader at this version must skip sections
  // tagged by future writers and still decode everything it knows. Craft
  // such a snapshot by appending an unknown section and re-checksumming.
  auto append_u32 = [](std::string* s, uint32_t v) {
    for (int i = 0; i < 4; ++i)
      s->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  auto append_u64 = [](std::string* s, uint64_t v) {
    for (int i = 0; i < 8; ++i)
      s->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  };
  const std::string good = SnapshotWriter(TinyData()).bytes();
  constexpr size_t kHeaderSize = 24;  // magic + version + count + size
  std::string payload = good.substr(kHeaderSize, good.size() - kHeaderSize - 4);
  const std::string future_body = "opaque bytes from the future";
  append_u32(&payload, 777);  // tag no current reader knows
  append_u64(&payload, future_body.size());
  payload += future_body;

  std::string crafted = good.substr(0, 12);
  const uint32_t old_count = static_cast<uint8_t>(good[12]) |
                             static_cast<uint32_t>(
                                 static_cast<uint8_t>(good[13])) << 8;
  append_u32(&crafted, old_count + 1);
  append_u64(&crafted, payload.size());
  crafted += payload;
  append_u32(&crafted, Crc32(payload));

  const auto parsed = SnapshotReader::Parse(crafted);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const SnapshotData expected = TinyData();
  EXPECT_EQ(parsed.value().interest, expected.interest);
  EXPECT_EQ(parsed.value().influence, expected.influence);
  EXPECT_EQ(parsed.value().years, expected.years);
  EXPECT_EQ(parsed.value().profiles, expected.profiles);
  EXPECT_TRUE(parsed.value().ann_index.empty());
}

TEST(ServingState, RejectsCorruptAnnSection) {
  // Garbage in the ANN section survives the (opaque) snapshot layer but
  // must fail the load — not lurk until a retrieval-mode flip.
  SnapshotData garbage = TinyData();
  garbage.ann_index = "definitely not a serialized hnsw graph";
  auto round_trip = SnapshotReader::Parse(SnapshotWriter(garbage).bytes());
  ASSERT_TRUE(round_trip.ok()) << round_trip.status().ToString();
  EXPECT_FALSE(
      ServingState::FromSnapshot(std::move(round_trip).value(), {}).ok());

  // Truncated real index bytes: same story.
  SnapshotData truncated = TinyData();
  const std::string ann = TinyAnnBytes();
  truncated.ann_index = ann.substr(0, ann.size() - 5);
  EXPECT_FALSE(ServingState::FromSnapshot(std::move(truncated), {}).ok());

  // The identical snapshot with intact bytes loads fine.
  SnapshotData intact = TinyData();
  intact.ann_index = ann;
  const auto loaded = ServingState::FromSnapshot(std::move(intact), {});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_NE(loaded.value()->ann_index, nullptr);
  EXPECT_EQ(loaded.value()->ann_index->size(), 4u);
}

TEST(ServingState, RejectsAnnSectionWithOutOfRangePaperIds) {
  // A structurally valid index whose external ids exceed the snapshot's
  // paper count (Deserialize treats ids as opaque) must be a load error,
  // not an out-of-bounds read during the candidate pass.
  const SnapshotData d = TinyData();
  std::vector<int32_t> ids;
  std::vector<double> flat;
  for (size_t i = 0; i < d.influence.rows(); ++i) {
    ids.push_back(static_cast<int32_t>(i) + 40);  // 40..43, all out of range
    const double* row = d.influence.row_data(i);
    flat.insert(flat.end(), row, row + d.influence.cols());
  }
  auto built = ann::HnswIndex::Build(ids, flat, 2, ann::HnswOptions{});
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  SnapshotData skewed = TinyData();
  skewed.ann_index = built.value()->Serialize();
  CandidateIndexOptions options;
  options.retrieval = RetrievalMode::kAnnEmbedding;
  const auto result = ServingState::FromSnapshot(std::move(skewed), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("outside paper range"),
            std::string::npos)
      << result.status().ToString();
}

TEST(ServingState, RejectsAnnSectionWithDimMismatch) {
  // Two individually well-formed but mutually inconsistent sections: a
  // 3-dim index over a 2-dim embedding snapshot. Must be a load-time
  // Status, not a CHECK-abort when the first query hits Search.
  const SnapshotData d = TinyData();
  std::vector<int32_t> ids;
  std::vector<double> flat;
  for (size_t i = 0; i < d.influence.rows(); ++i) {
    ids.push_back(static_cast<int32_t>(i));
    const double* row = d.influence.row_data(i);
    flat.insert(flat.end(), row, row + d.influence.cols());
    flat.push_back(0.0);  // pad each row to dim 3
  }
  auto built = ann::HnswIndex::Build(ids, flat, 3, ann::HnswOptions{});
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  SnapshotData skewed = TinyData();
  skewed.ann_index = built.value()->Serialize();
  CandidateIndexOptions options;
  options.retrieval = RetrievalMode::kAnnEmbedding;
  const auto result = ServingState::FromSnapshot(std::move(skewed), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("dim"), std::string::npos)
      << result.status().ToString();
}

TEST(ServingState, AnnModeWithoutIndexIsALoadError) {
  CandidateIndexOptions options;
  options.retrieval = RetrievalMode::kAnnEmbedding;
  const auto result = ServingState::FromSnapshot(TinyData(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("ANN"), std::string::npos);
}

// --- CandidateIndex -------------------------------------------------------

TEST(CandidateIndex, FiltersByYearWindowDisciplineAndTopic) {
  const SnapshotData data = TinyData();  // papers 2,3 are post-2014
  CandidateIndexOptions options;
  options.min_year = 2014;
  CandidateIndex index(data, options);
  EXPECT_EQ(index.num_new_papers(), 2u);
  EXPECT_EQ(index.AllNewPapers(), (std::vector<int32_t>{2, 3}));

  // User 0's profile {0}: discipline 0, topic 0 -> candidate 2 only.
  EXPECT_EQ(index.CandidatesFor(0), (std::vector<int32_t>{2}));
  // User 1's profile {1,0}: both disciplines and topics -> both papers.
  EXPECT_EQ(index.CandidatesFor(1), (std::vector<int32_t>{2, 3}));
  // Unknown user falls back to the full pool.
  EXPECT_EQ(index.CandidatesFor(7), (std::vector<int32_t>{2, 3}));
  EXPECT_EQ(index.CandidatesFor(-1), (std::vector<int32_t>{2, 3}));

  // Inverted topic index covers only in-window papers.
  EXPECT_EQ(index.PapersForTopic(0), (std::vector<int32_t>{2}));
  EXPECT_EQ(index.PapersForTopic(1), (std::vector<int32_t>{3}));
  EXPECT_TRUE(index.PapersForTopic(9).empty());
}

TEST(CandidateIndex, YearWindowAndFilterToggles) {
  const SnapshotData data = TinyData();
  CandidateIndexOptions narrow;
  narrow.min_year = 2014;
  narrow.max_year = 2015;
  EXPECT_EQ(CandidateIndex(data, narrow).AllNewPapers(),
            (std::vector<int32_t>{2}));

  CandidateIndexOptions open;
  open.min_year = 2014;
  open.filter_disciplines = false;
  open.prune_topics = false;
  CandidateIndex index(data, open);
  EXPECT_EQ(index.CandidatesFor(0), (std::vector<int32_t>{2, 3}));
}

// --- FrozenScorer ---------------------------------------------------------

TEST(FrozenScorer, TopNIsSortedAndDeterministic) {
  FrozenScorer scorer(TinyData());
  const std::vector<int32_t> profile = {0, 1};
  const std::vector<int32_t> candidates = {2, 3, 0, 1};
  const auto scores = scorer.Score(profile, candidates);
  ASSERT_EQ(scores.size(), 4u);
  const auto top2 = scorer.TopN(profile, candidates, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_GE(top2[0].score, top2[1].score);
  const auto all = scorer.TopN(profile, candidates, 100);
  EXPECT_EQ(all.size(), 4u);  // n clamps to the candidate count
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(all[i - 1].score > all[i].score ||
                (all[i - 1].score == all[i].score &&
                 all[i - 1].paper < all[i].paper));
  }
  // Empty profile scores zero everywhere but stays well-formed.
  const auto cold = scorer.TopN({}, candidates, 3);
  ASSERT_EQ(cold.size(), 3u);
  EXPECT_EQ(cold[0].score, 0.0);
}

void ExpectBitEqualScores(const std::vector<double>& want,
                          const std::vector<double>& got,
                          const std::string& what) {
  ASSERT_EQ(want.size(), got.size()) << what;
  for (size_t i = 0; i < want.size(); ++i)
    ASSERT_EQ(want[i], got[i]) << what << " at index " << i;
}

TEST(FrozenScorer, BatchMatchesOracleOnDegenerateShapes) {
  const FrozenScorer scorer(TinyData());
  const std::vector<int32_t> all = {0, 1, 2, 3};

  // Empty profile: zeros from both engines.
  ExpectBitEqualScores(scorer.Score({}, all), scorer.ScoreBatch({}, all),
                       "empty profile");
  // Empty candidates: empty from both.
  EXPECT_TRUE(scorer.ScoreBatch({0, 1}, {}).empty());
  // Single candidate / single-paper profile.
  ExpectBitEqualScores(scorer.Score({1}, {2}), scorer.ScoreBatch({1}, {2}),
                       "1x1");
  // Duplicate profile entries are legal (a user can weight a paper twice).
  ExpectBitEqualScores(scorer.Score({0, 0, 1}, all),
                       scorer.ScoreBatch({0, 0, 1}, all), "dup profile");
  // n = 0 keeps nothing.
  EXPECT_TRUE(scorer.TopN({0, 1}, all, 0).empty());

  // Zero-dimension model: every pair scores sigmoid(0) = 0.5 on both
  // paths (the batched engine must not early-out past the epilogue).
  SnapshotData flat = TinyData();
  flat.interest = la::Matrix(4, 0);
  flat.influence = la::Matrix(4, 0);
  flat.text = la::Matrix();
  const FrozenScorer zero_dim(flat);
  const auto oracle = zero_dim.Score({0, 1, 2}, all);
  for (double s : oracle) EXPECT_EQ(s, 0.5);
  ExpectBitEqualScores(oracle, zero_dim.ScoreBatch({0, 1, 2}, all),
                       "dim-0 model");
}

TEST(FrozenScorer, StackedPassMatchesEachSoloRequest) {
  const FrozenScorer scorer(TinyData());
  const std::vector<int32_t> candidates = {0, 1, 2, 3};
  const std::vector<std::vector<int32_t>> profiles = {
      {0}, {1, 0}, {}, {3, 2, 1}};
  std::vector<std::vector<double>> scores(profiles.size());
  std::vector<FrozenScorer::StackedRequest> stacked;
  stacked.reserve(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i)
    stacked.push_back({&profiles[i], &scores[i]});
  ScoreBatchStats stats;
  scorer.ScoreStackedInto(stacked, candidates, &stats);
  for (size_t i = 0; i < profiles.size(); ++i) {
    ExpectBitEqualScores(scorer.Score(profiles[i], candidates), scores[i],
                         "stacked user " + std::to_string(i));
  }
  EXPECT_GE(stats.gather_ns, 0);
}

TEST(FrozenScorer, HeapSelectionKeepsThePartialSortContract) {
  // Many ties: the heap path must reproduce (score desc, id asc) exactly,
  // including the keep >= size and keep == size - 1 boundaries.
  SnapshotData d = TinyData();
  d.interest = la::Matrix(8, 1);
  d.influence = la::Matrix(8, 1);
  d.text = la::Matrix();
  d.years = {2015, 2015, 2015, 2015, 2015, 2015, 2015, 2015};
  d.disciplines.assign(8, 0);
  d.topics.assign(8, 0);
  d.profiles = {{0}};
  for (size_t p = 0; p < 8; ++p) {
    d.interest(p, 0) = 1.0;
    d.influence(p, 0) = static_cast<double>(p % 3);  // three tie groups
  }
  const FrozenScorer scorer(d);
  const std::vector<int32_t> candidates = {7, 6, 5, 4, 3, 2, 1, 0};
  const auto scores = scorer.Score({0}, candidates);
  for (int n : {1, 3, 5, 7, 8, 100}) {
    const auto top = scorer.TopN({0}, candidates, n);
    // Reference: full materialize + stable ranking contract.
    std::vector<ScoredPaper> ranked(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i)
      ranked[i] = {candidates[i], scores[i]};
    std::sort(ranked.begin(), ranked.end(),
              [](const ScoredPaper& a, const ScoredPaper& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.paper < b.paper;
              });
    ranked.resize(std::min(ranked.size(), static_cast<size_t>(n)));
    ASSERT_EQ(top.size(), ranked.size()) << "n=" << n;
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].paper, ranked[i].paper) << "n=" << n << " pos " << i;
      EXPECT_EQ(top[i].score, ranked[i].score) << "n=" << n << " pos " << i;
    }
  }
}

// --- End-to-end: every dataset preset round-trips bit-exactly -------------

struct PresetCase {
  const char* name;
  datagen::CorpusGeneratorOptions options;
};

std::vector<PresetCase> AllPresets() {
  using datagen::DatasetScale;
  return {
      {"acm", datagen::AcmLikeOptions(DatasetScale::kTiny, 51)},
      {"scopus", datagen::ScopusLikeOptions(DatasetScale::kTiny, 52)},
      {"pubmed", datagen::PubmedRctLikeOptions(DatasetScale::kTiny, 53)},
      {"patent", datagen::PatentLikeOptions(DatasetScale::kTiny, 54)},
  };
}

TEST(SnapshotEndToEnd, FrozenScoresMatchLiveNPRecOnEveryPreset) {
  for (const PresetCase& preset : AllPresets()) {
    SCOPED_TRACE(preset.name);
    auto world = BuildWorld(preset.options);

    SnapshotData data = FreezeNPRec(world->ctx, *world->model, preset.name);
    SnapshotWriter writer(data);
    auto parsed = SnapshotReader::Parse(writer.bytes());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

    FrozenScorer scorer(parsed.value());
    CandidateIndexOptions index_options;
    index_options.min_year = kSplitYear;
    CandidateIndex index(parsed.value(), index_options);
    ASSERT_GT(index.num_new_papers(), 0u);

    // Every user with a profile must score candidates identically to the
    // live model — bit-exact, since the snapshot stores raw double bits
    // and the frozen forward pass repeats the same operations.
    int compared_users = 0;
    const auto& corpus = world->dataset.corpus;
    for (const corpus::Author& author : corpus.authors) {
      if (compared_users >= 8) break;
      const std::vector<corpus::PaperId> profile =
          rec::UserProfile(world->ctx, author.id);
      if (profile.empty()) continue;
      const std::vector<int32_t>& candidates = index.CandidatesFor(author.id);
      if (candidates.empty()) continue;

      rec::UserQuery query{author.id, profile};
      const std::vector<corpus::PaperId> live_candidates(candidates.begin(),
                                                         candidates.end());
      const std::vector<double> live =
          world->model->Score(world->ctx, query, live_candidates);
      const std::vector<int32_t> frozen_profile(profile.begin(),
                                                profile.end());
      const std::vector<double> frozen =
          scorer.Score(frozen_profile, candidates);
      ASSERT_EQ(live.size(), frozen.size());
      for (size_t i = 0; i < live.size(); ++i)
        EXPECT_EQ(live[i], frozen[i]) << "candidate " << candidates[i];

      // Top-N order agrees with ranking the live scores.
      const auto top = scorer.TopN(frozen_profile, candidates, 10);
      for (size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].score, top[i].score);
      ++compared_users;
    }
    EXPECT_GT(compared_users, 0) << "preset produced no scoreable users";
  }
}

TEST(SnapshotEndToEnd, BatchEngineMatchesOracleOnEveryPresetAndThreadCount) {
  // The acceptance gate of the batched scorer: on every dataset preset and
  // for SUBREC_NUM_THREADS in {1, 2, 4}, ScoreBatch and the stacked
  // multi-user pass are bit-exact against the per-pair oracle (itself
  // bit-exact against live NPRec per the test above). The thread sweep
  // guards the whole frozen pipeline — freeze, ANN build, candidate index
  // — against picking up a thread-count-dependent operation order.
  for (const PresetCase& preset : AllPresets()) {
    SCOPED_TRACE(preset.name);
    auto world = BuildWorld(preset.options);
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      par::ScopedNumThreads scoped(threads);
      SnapshotData data = FreezeNPRec(world->ctx, *world->model, preset.name);
      auto parsed = SnapshotReader::Parse(SnapshotWriter(data).bytes());
      ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
      const FrozenScorer scorer(parsed.value());
      CandidateIndexOptions index_options;
      index_options.min_year = kSplitYear;
      const CandidateIndex index(parsed.value(), index_options);

      // Solo batch vs oracle, per user.
      int compared = 0;
      std::vector<FrozenScorer::StackedRequest> stacked;
      std::vector<std::vector<double>> stacked_scores;
      std::vector<const std::vector<int32_t>*> stacked_profiles;
      const std::vector<int32_t>& pool = index.AllNewPapers();
      const auto& profiles = parsed.value().profiles;
      for (size_t u = 0; u < profiles.size() && compared < 6; ++u) {
        if (profiles[u].empty()) continue;
        const auto& candidates = index.CandidatesFor(static_cast<int32_t>(u));
        if (candidates.empty()) continue;
        ExpectBitEqualScores(scorer.Score(profiles[u], candidates),
                             scorer.ScoreBatch(profiles[u], candidates),
                             "user " + std::to_string(u));
        stacked_profiles.push_back(&profiles[u]);
        ++compared;
      }
      ASSERT_GT(compared, 0);

      // Stacked pass over the shared pool vs each user's oracle.
      stacked_scores.resize(stacked_profiles.size());
      for (size_t i = 0; i < stacked_profiles.size(); ++i)
        stacked.push_back({stacked_profiles[i], &stacked_scores[i]});
      scorer.ScoreStackedInto(stacked, pool, nullptr);
      for (size_t i = 0; i < stacked_profiles.size(); ++i) {
        ExpectBitEqualScores(scorer.Score(*stacked_profiles[i], pool),
                             stacked_scores[i],
                             "stacked slot " + std::to_string(i));
      }
    }
  }
}

TEST(SnapshotEndToEnd, FreezeBuildsServableAnnIndex) {
  auto world =
      BuildWorld(datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 99));
  SnapshotData data = FreezeNPRec(world->ctx, *world->model, "scopus");
  ASSERT_FALSE(data.ann_index.empty()) << "freeze should build ANN by default";

  // Round-trip through the wire format, then load in embedding-retrieval
  // mode: at least one user must actually be served off the graph.
  auto parsed = SnapshotReader::Parse(SnapshotWriter(data).bytes());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  CandidateIndexOptions index_options;
  index_options.retrieval = RetrievalMode::kAnnEmbedding;
  const auto loaded =
      ServingState::FromSnapshot(std::move(parsed).value(), index_options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ServingState& state = *loaded.value();
  ASSERT_NE(state.ann_index, nullptr);

  int ann_users = 0;
  for (size_t u = 0; u < state.profiles.size(); ++u) {
    const auto source = state.index.SourceFor(static_cast<int32_t>(u));
    if (source == CandidateSource::kAnnEmbedding) {
      ++ann_users;
      // ANN candidate lists obey the same contract as filtered ones:
      // ascending ids, all within the serving year window.
      const auto& c = state.index.CandidatesFor(static_cast<int32_t>(u));
      EXPECT_FALSE(c.empty());
      for (size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i - 1], c[i]);
    }
  }
  EXPECT_GT(ann_users, 0) << "no user was served from the ANN index";
}

TEST(SnapshotEndToEnd, AnnModeServesAndCountsRequests) {
  auto world =
      BuildWorld(datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 99));
  const std::string path =
      ::testing::TempDir() + "/subrec_ann_serve_test.snap";
  SnapshotWriter writer(FreezeNPRec(world->ctx, *world->model, "scopus"));
  ASSERT_TRUE(writer.WriteFile(path).ok());

  ServeOptions options;
  options.index.retrieval = RetrievalMode::kAnnEmbedding;
  options.cache_capacity = 0;
  RecommendService service(options);
  ASSERT_TRUE(service.LoadSnapshotFile(path).ok());

  // Serve every profiled user once; the per-source counter family must
  // account for each scored request, with the ANN branch represented.
  const auto counters_before =
      obs::MetricsRegistry::Global().Snapshot().counters;
  auto count_of = [](const std::map<std::string, int64_t>& counters,
                     const std::string& name) {
    const auto it = counters.find(name);
    return it == counters.end() ? int64_t{0} : it->second;
  };
  int served = 0;
  const std::shared_ptr<const ServingState> state = service.state();
  for (size_t u = 0; u < state->profiles.size(); ++u) {
    const RecResponse response = service.TopN(static_cast<int32_t>(u), 5);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    for (size_t i = 1; i < response.items.size(); ++i)
      EXPECT_GE(response.items[i - 1].score, response.items[i].score);
    ++served;
  }
  const auto counters_after =
      obs::MetricsRegistry::Global().Snapshot().counters;
  int64_t family_delta = 0;
  for (const auto& [name, value] : counters_after) {
    if (name.rfind("serve.candidates.source.", 0) == 0)
      family_delta += value - count_of(counters_before, name);
  }
  EXPECT_EQ(family_delta, served);
  EXPECT_GT(count_of(counters_after, "serve.candidates.source.ann_embedding"),
            count_of(counters_before, "serve.candidates.source.ann_embedding"));
}

// --- RecommendService -----------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = BuildWorld(
        datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 99)).release();
    snapshot_path_ = new std::string(::testing::TempDir() +
                                     "/subrec_service_test.snap");
    SnapshotWriter writer(FreezeNPRec(world_->ctx, *world_->model, "scopus"));
    SUBREC_CHECK(writer.WriteFile(*snapshot_path_).ok());
  }

  /// A user with a non-empty serving profile.
  static int32_t AUser() {
    for (const corpus::Author& a : world_->dataset.corpus.authors) {
      if (!rec::UserProfile(world_->ctx, a.id).empty()) return a.id;
    }
    SUBREC_CHECK(false) << "no user with a profile";
    return -1;
  }

  static TestWorld* world_;
  static std::string* snapshot_path_;
};

TestWorld* ServiceTest::world_ = nullptr;
std::string* ServiceTest::snapshot_path_ = nullptr;

TEST_F(ServiceTest, RequiresASnapshotBeforeServing) {
  RecommendService service(ServeOptions{});
  const RecResponse response = service.TopN(0, 5);
  ASSERT_FALSE(response.status.ok());
  EXPECT_EQ(response.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServiceTest, ServesSortedTopNWithCaching) {
  ServeOptions options;
  options.num_threads = 2;
  RecommendService service(options);
  ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());
  ASSERT_NE(service.state(), nullptr);
  EXPECT_EQ(service.state()->dataset, "scopus");

  const int32_t user = AUser();
  const RecResponse first = service.TopN(user, 5);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.cache_hit);
  ASSERT_LE(first.items.size(), 5u);
  ASSERT_FALSE(first.items.empty());
  for (size_t i = 1; i < first.items.size(); ++i)
    EXPECT_GE(first.items[i - 1].score, first.items[i].score);
  EXPECT_GE(first.done_ns, first.enqueue_ns);

  const RecResponse second = service.TopN(user, 5);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  ASSERT_EQ(second.items.size(), first.items.size());
  for (size_t i = 0; i < first.items.size(); ++i) {
    EXPECT_EQ(second.items[i].paper, first.items[i].paper);
    EXPECT_EQ(second.items[i].score, first.items[i].score);
  }
  // A different n is a different cache entry.
  EXPECT_FALSE(service.TopN(user, 3).cache_hit);
}

TEST_F(ServiceTest, RejectsUnknownUsers) {
  RecommendService service(ServeOptions{});
  ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());
  EXPECT_EQ(service.TopN(-5, 5).status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.TopN(1 << 29, 5).status.code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ServiceTest, PairwiseAndGemmModesServeIdenticalResults) {
  // The scorer_mode option is a pure engine switch: every user's ranked
  // list must be identical — papers AND score bits — across modes.
  std::vector<std::vector<ScoredPaper>> per_mode;
  for (const ScorerMode mode : {ScorerMode::kPairwise, ScorerMode::kGemm}) {
    ServeOptions options;
    options.cache_capacity = 0;
    options.scorer_mode = mode;
    RecommendService service(options);
    ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());
    const size_t users = service.state()->profiles.size();
    std::vector<ScoredPaper> flattened;
    for (size_t u = 0; u < users; ++u) {
      const RecResponse r = service.TopN(static_cast<int32_t>(u), 7);
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      flattened.insert(flattened.end(), r.items.begin(), r.items.end());
    }
    per_mode.push_back(std::move(flattened));
  }
  ASSERT_EQ(per_mode[0].size(), per_mode[1].size());
  for (size_t i = 0; i < per_mode[0].size(); ++i) {
    EXPECT_EQ(per_mode[0][i].paper, per_mode[1][i].paper) << "slot " << i;
    EXPECT_EQ(per_mode[0][i].score, per_mode[1][i].score) << "slot " << i;
  }
}

TEST_F(ServiceTest, BatchCoalescesRequestsSharingACandidateList) {
  ServeOptions options;
  options.cache_capacity = 0;  // every request must actually score
  options.batch_size = 8;
  options.num_threads = 1;
  RecommendService service(options);
  ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());
  const int32_t user = AUser();

  // Baselines from the solo path.
  const RecResponse solo3 = service.TopN(user, 3);
  const RecResponse solo5 = service.TopN(user, 5);
  ASSERT_TRUE(solo3.status.ok());
  ASSERT_TRUE(solo5.status.ok());

  auto counter_value = [](const std::string& name) {
    const auto snap = obs::MetricsRegistry::Global().Snapshot().counters;
    const auto it = snap.find(name);
    return it == snap.end() ? int64_t{0} : it->second;
  };
  const int64_t passes_before = counter_value("serve.score.stacked_passes");
  const int64_t stacked_before =
      counter_value("serve.score.requests.stacked");

  // Same user twice in one chunk: both draw the same candidate-list
  // reference, so the chunk pre-pass stacks them into one GEMM; the
  // third request (invalid user) must be rejected untouched.
  const std::vector<RecResponse> batch =
      service.TopNBatch({{user, 3}, {user, 5}, {-7, 4}});
  ASSERT_EQ(batch.size(), 3u);
  ASSERT_TRUE(batch[0].status.ok());
  ASSERT_TRUE(batch[1].status.ok());
  EXPECT_EQ(batch[2].status.code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(counter_value("serve.score.stacked_passes"), passes_before + 1);
  EXPECT_EQ(counter_value("serve.score.requests.stacked"),
            stacked_before + 2);

  // Coalesced results are bit-identical to the solo path.
  const std::vector<const RecResponse*> want = {&solo3, &solo5};
  for (size_t r = 0; r < want.size(); ++r) {
    ASSERT_EQ(batch[r].items.size(), want[r]->items.size()) << "req " << r;
    for (size_t i = 0; i < batch[r].items.size(); ++i) {
      EXPECT_EQ(batch[r].items[i].paper, want[r]->items[i].paper);
      EXPECT_EQ(batch[r].items[i].score, want[r]->items[i].score);
    }
  }
}

TEST_F(ServiceTest, RejectsOversizedNInEveryBuildMode) {
  RecommendService service(ServeOptions{});
  ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());
  const int32_t user = AUser();
  // n gets 16 bits in the cache key: 70000 and 70000 & 0xFFFF (= 4464)
  // would alias, so anything >= 2^16 must be an error, never a masked key.
  EXPECT_EQ(service.TopN(user, 70000).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.TopN(user, 1 << 16).status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(service.TopN(user, (1 << 16) - 1).status.ok());
}

TEST_F(ServiceTest, DestructionWithQueuedBatchesIsSafe) {
  // Tear the service down while SubmitBatch work is still queued and the
  // returned futures have been dropped: the pool must drain before the
  // cache and state die (ASan/TSan presets make this a hard gate).
  const int32_t user = AUser();
  {
    ServeOptions options;
    options.num_threads = 2;
    options.batch_size = 2;
    RecommendService service(options);
    ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());
    for (int round = 0; round < 50; ++round) {
      std::vector<RecRequest> requests;
      for (int i = 0; i < 8; ++i) requests.push_back({user, 1 + (i % 7)});
      service.SubmitBatch(std::move(requests));  // future dropped on purpose
    }
  }
}

TEST_F(ServiceTest, CacheCanBeDisabled) {
  ServeOptions options;
  options.cache_capacity = 0;
  RecommendService service(options);
  ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());
  const int32_t user = AUser();
  EXPECT_FALSE(service.TopN(user, 5).cache_hit);
  EXPECT_FALSE(service.TopN(user, 5).cache_hit);
  EXPECT_EQ(service.cache_hits(), 0);
}

TEST_F(ServiceTest, SwapInvalidatesCacheAndBumpsGeneration) {
  RecommendService service(ServeOptions{});
  ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());
  const uint64_t generation = service.generation();
  const int32_t user = AUser();
  const RecResponse before = service.TopN(user, 5);
  ASSERT_TRUE(service.TopN(user, 5).cache_hit);

  // Hot reload the same snapshot: new generation, cold cache, same answers.
  ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());
  EXPECT_EQ(service.generation(), generation + 1);
  const RecResponse after = service.TopN(user, 5);
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cache_hit);
  ASSERT_EQ(after.items.size(), before.items.size());
  for (size_t i = 0; i < after.items.size(); ++i)
    EXPECT_EQ(after.items[i].score, before.items[i].score);
}

TEST_F(ServiceTest, BatchMatchesIndividualRequests) {
  ServeOptions options;
  options.num_threads = 4;
  options.batch_size = 3;
  RecommendService service(options);
  ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());

  std::vector<RecRequest> requests;
  const size_t num_users = service.state()->profiles.size();
  for (size_t u = 0; u < num_users && requests.size() < 20; ++u)
    requests.push_back({static_cast<int32_t>(u), 4});
  const std::vector<RecResponse> batch = service.TopNBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const RecResponse individual =
        service.TopN(requests[i].user, requests[i].n);
    ASSERT_EQ(batch[i].status.ok(), individual.status.ok());
    if (!individual.status.ok()) continue;
    ASSERT_EQ(batch[i].items.size(), individual.items.size());
    for (size_t j = 0; j < individual.items.size(); ++j) {
      EXPECT_EQ(batch[i].items[j].paper, individual.items[j].paper);
      EXPECT_EQ(batch[i].items[j].score, individual.items[j].score);
    }
  }
}

/// Concurrent batches + a mid-flight hot reload; under the tsan preset this
/// is the end-to-end serving race detector.
TEST_F(ServiceTest, ConcurrentBatchesSurviveHotReload) {
  ServeOptions options;
  options.num_threads = 4;
  options.batch_size = 4;
  RecommendService service(options);
  ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());

  const int32_t user = AUser();
  std::vector<std::future<std::vector<RecResponse>>> inflight;
  for (int round = 0; round < 10; ++round) {
    std::vector<RecRequest> requests;
    for (int i = 0; i < 12; ++i)
      requests.push_back({user, 1 + (i % 5)});
    inflight.push_back(service.SubmitBatch(std::move(requests)));
    if (round == 5) {
      ASSERT_TRUE(service.LoadSnapshotFile(*snapshot_path_).ok());
    }
  }
  size_t completed = 0;
  for (auto& f : inflight) {
    for (const RecResponse& r : f.get()) {
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      EXPECT_FALSE(r.items.empty());
      ++completed;
    }
  }
  EXPECT_EQ(completed, 120u);
}

}  // namespace
}  // namespace subrec::serve
