#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "datagen/streaming.h"
#include "eval/metrics.h"

namespace subrec::datagen {
namespace {

const GeneratedDataset& TinyScopus() {
  static const GeneratedDataset* dataset = [] {
    auto result = GenerateCorpus(ScopusLikeOptions(DatasetScale::kTiny, 42));
    SUBREC_CHECK(result.ok());
    return new GeneratedDataset(std::move(result).value());
  }();
  return *dataset;
}

TEST(Generator, DeterministicGivenSeed) {
  auto a = GenerateCorpus(ScopusLikeOptions(DatasetScale::kTiny, 7));
  auto b = GenerateCorpus(ScopusLikeOptions(DatasetScale::kTiny, 7));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().corpus.papers.size(), b.value().corpus.papers.size());
  for (size_t i = 0; i < a.value().corpus.papers.size(); ++i) {
    const auto& pa = a.value().corpus.papers[i];
    const auto& pb = b.value().corpus.papers[i];
    EXPECT_EQ(pa.citation_count, pb.citation_count);
    EXPECT_EQ(pa.references, pb.references);
    ASSERT_EQ(pa.abstract_sentences.size(), pb.abstract_sentences.size());
    for (size_t s = 0; s < pa.abstract_sentences.size(); ++s)
      EXPECT_EQ(pa.abstract_sentences[s].text, pb.abstract_sentences[s].text);
  }
}

TEST(Generator, BasicStructuralInvariants) {
  const auto& d = TinyScopus();
  const auto& c = d.corpus;
  EXPECT_EQ(c.discipline_names.size(), 3u);
  EXPECT_FALSE(c.papers.empty());
  for (const auto& p : c.papers) {
    EXPECT_GE(p.year, 2008);
    EXPECT_LE(p.year, 2017);
    EXPECT_FALSE(p.abstract_sentences.empty());
    EXPECT_FALSE(p.authors.empty());
    // References always point to earlier papers (ids are chronological).
    for (corpus::PaperId ref : p.references) EXPECT_LT(ref, p.id);
    // Keyword and venue presence per preset.
    EXPECT_FALSE(p.keywords.empty());
    EXPECT_GE(p.venue, 0);
    EXPECT_FALSE(p.ccs_path.empty());
    EXPECT_GE(p.citation_count, 0);
  }
  // Scopus preset drops affiliations.
  EXPECT_EQ(c.num_affiliations, 0);
}

TEST(Generator, RolesFollowCanonicalOrder) {
  const auto& c = TinyScopus().corpus;
  for (const auto& p : c.papers) {
    int prev = -1;
    for (const auto& s : p.abstract_sentences) {
      EXPECT_GE(s.role, 0);
      EXPECT_LT(s.role, 3);
      EXPECT_GE(s.role, prev);  // background -> method -> result
      prev = s.role;
    }
  }
}

TEST(Generator, AuthorsOwnTheirPapers) {
  const auto& c = TinyScopus().corpus;
  for (const auto& a : c.authors) {
    for (corpus::PaperId pid : a.papers) {
      const auto& authors = c.paper(pid).authors;
      EXPECT_TRUE(std::find(authors.begin(), authors.end(), a.id) !=
                  authors.end());
    }
  }
}

TEST(Generator, InnovationDrivesCitations) {
  // The causal chain the whole reproduction rests on: discipline-weighted
  // innovation must correlate positively with realized citations.
  const auto& d = TinyScopus();
  const auto& c = d.corpus;
  std::vector<double> weighted_innovation, citations;
  for (const auto& p : c.papers) {
    if (p.year > 2014) continue;  // mature papers only
    const auto& beta =
        d.disciplines[static_cast<size_t>(p.discipline)].innovation_sensitivity;
    double w = 0.0;
    for (int k = 0; k < 3; ++k)
      w += beta[static_cast<size_t>(k)] *
           p.latent_innovation[static_cast<size_t>(k)];
    weighted_innovation.push_back(w);
    citations.push_back(static_cast<double>(p.citation_count));
  }
  EXPECT_GT(eval::SpearmanCorrelation(weighted_innovation, citations), 0.35);
}

TEST(Generator, DisciplineSensitivityShapesCitations) {
  // In the CS-like discipline (beta_M high) method innovation should
  // correlate with citations more than background innovation does.
  const auto& d = TinyScopus();
  std::vector<double> z_b, z_m, cites;
  for (const auto& p : d.corpus.papers) {
    if (p.discipline != 0 || p.year > 2014) continue;
    z_b.push_back(p.latent_innovation[0]);
    z_m.push_back(p.latent_innovation[1]);
    cites.push_back(static_cast<double>(p.citation_count));
  }
  ASSERT_GT(z_b.size(), 50u);
  EXPECT_GT(eval::SpearmanCorrelation(z_m, cites),
            eval::SpearmanCorrelation(z_b, cites));
}

TEST(Generator, PatentPresetIsLowResource) {
  auto result = GenerateCorpus(PatentLikeOptions(DatasetScale::kTiny, 5));
  ASSERT_TRUE(result.ok());
  const auto& c = result.value().corpus;
  EXPECT_EQ(c.num_venues, 0);
  EXPECT_EQ(c.num_affiliations, 0);
  EXPECT_EQ(c.num_ccs_nodes, 0);
  for (const auto& p : c.papers) {
    EXPECT_TRUE(p.keywords.empty());
    EXPECT_EQ(p.venue, -1);
    EXPECT_TRUE(p.ccs_path.empty());
  }
}

TEST(Generator, PubmedPresetHasLongAbstracts) {
  auto result = GenerateCorpus(PubmedRctLikeOptions(DatasetScale::kTiny, 6));
  ASSERT_TRUE(result.ok());
  double total = 0.0;
  for (const auto& p : result.value().corpus.papers)
    total += static_cast<double>(p.abstract_sentences.size());
  const double mean = total / static_cast<double>(
                                  result.value().corpus.papers.size());
  EXPECT_GT(mean, 8.0);  // paper: PubMedRCT averages 11.5
}

TEST(Generator, RejectsDegenerateConfigs) {
  CorpusGeneratorOptions options;
  options.disciplines.clear();
  EXPECT_FALSE(GenerateCorpus(options).ok());
  options = CorpusGeneratorOptions{};
  options.num_authors = 1;
  options.team_size = 4;
  EXPECT_FALSE(GenerateCorpus(options).ok());
  options = CorpusGeneratorOptions{};
  options.end_year = options.start_year - 1;
  EXPECT_FALSE(GenerateCorpus(options).ok());
}

TEST(Split, PartitionsByYear) {
  const auto& c = TinyScopus().corpus;
  const YearSplit split = SplitByYear(c, 2014);
  EXPECT_EQ(split.train.size() + split.test.size(), c.papers.size());
  for (corpus::PaperId id : split.train) EXPECT_LE(c.paper(id).year, 2014);
  for (corpus::PaperId id : split.test) EXPECT_GT(c.paper(id).year, 2014);
  EXPECT_FALSE(split.train.empty());
  EXPECT_FALSE(split.test.empty());
}

TEST(Split, PapersOfDisciplineFilters) {
  const auto& c = TinyScopus().corpus;
  const auto papers = PapersOfDiscipline(c, 1, 2010, 2012);
  EXPECT_FALSE(papers.empty());
  for (corpus::PaperId id : papers) {
    EXPECT_EQ(c.paper(id).discipline, 1);
    EXPECT_GE(c.paper(id).year, 2010);
    EXPECT_LE(c.paper(id).year, 2012);
  }
}

TEST(Split, HeldOutCitationsAreNewPapers) {
  const auto& c = TinyScopus().corpus;
  for (const auto& a : c.authors) {
    for (corpus::PaperId pid : HeldOutCitations(c, a.id, 2014))
      EXPECT_GT(c.paper(pid).year, 2014);
  }
}

TEST(Split, SelectedUsersHaveHistoryAndGroundTruth) {
  const auto& c = TinyScopus().corpus;
  const auto users = SelectUsers(c, 2014, 2);
  EXPECT_FALSE(users.empty());
  for (corpus::AuthorId u : users) {
    int train_papers = 0;
    for (corpus::PaperId pid : c.author(u).papers)
      if (c.paper(pid).year <= 2014) ++train_papers;
    EXPECT_GE(train_papers, 2);
    EXPECT_FALSE(HeldOutCitations(c, u, 2014).empty());
  }
}

TEST(Vocabulary, PoolsAreDisjointAcrossTopics) {
  SyntheticVocabulary vocab(2, 3);
  std::set<std::string> seen;
  for (int d = 0; d < 2; ++d) {
    for (int t = 0; t < 3; ++t) {
      for (const auto& w : vocab.TopicWords(d, t)) {
        EXPECT_TRUE(seen.insert(w).second) << "duplicate topic word " << w;
      }
    }
  }
}

TEST(AbstractGeneratorTest, InnovationInjectsNovelTokensInRole) {
  SyntheticVocabulary vocab(1, 2);
  AbstractGenerator gen;
  Rng rng(9);
  // Massive method innovation, zero elsewhere.
  const std::array<double, 3> z = {0.0, 5.0, 0.0};
  int novel_in_method = 0, novel_elsewhere = 0;
  for (int i = 0; i < 20; ++i) {
    // Novel terms are named "p<id>r<role>n<j>".
    const std::string method_marker = "p" + std::to_string(i) + "r1n";
    const std::string background_marker = "p" + std::to_string(i) + "r0n";
    const std::string result_marker = "p" + std::to_string(i) + "r2n";
    for (const auto& s : gen.Generate(vocab, 0, 0, z, i, rng)) {
      if (s.role == 1 && s.text.find(method_marker) != std::string::npos)
        ++novel_in_method;
      if (s.text.find(background_marker) != std::string::npos ||
          s.text.find(result_marker) != std::string::npos)
        ++novel_elsewhere;
    }
  }
  EXPECT_GT(novel_in_method, 10);
  EXPECT_EQ(novel_elsewhere, 0);
}


// --- StreamingCorpusGenerator ---------------------------------------------

TEST(Streaming, BatchSizeNeverChangesThePapers) {
  StreamingCorpusOptions options;
  options.papers_per_year = 50;
  auto a = StreamingCorpusGenerator::Create(options);
  auto b = StreamingCorpusGenerator::Create(options);
  ASSERT_TRUE(a.ok() && b.ok());
  StreamingCorpusGenerator one_shot = std::move(a).value();
  StreamingCorpusGenerator dribble = std::move(b).value();

  std::vector<StreamedPaper> all;
  ASSERT_EQ(one_shot.NextBatch(1u << 20, &all), one_shot.num_papers());

  std::vector<StreamedPaper> batch;
  size_t i = 0;
  while (dribble.NextBatch(7, &batch) > 0) {
    for (const StreamedPaper& p : batch) {
      ASSERT_LT(i, all.size());
      EXPECT_EQ(p.id, all[i].id);
      EXPECT_EQ(p.year, all[i].year);
      EXPECT_EQ(p.topic, all[i].topic);
      EXPECT_EQ(p.interest, all[i].interest);  // bit-exact doubles
      EXPECT_EQ(p.influence, all[i].influence);
      ++i;
    }
  }
  EXPECT_EQ(i, all.size());
}

TEST(Streaming, PaperAtMatchesTheStreamAndYearsAscend) {
  StreamingCorpusOptions options;
  options.papers_per_year = 30;
  auto created = StreamingCorpusGenerator::Create(options);
  ASSERT_TRUE(created.ok());
  StreamingCorpusGenerator gen = std::move(created).value();
  std::vector<StreamedPaper> all;
  gen.NextBatch(1u << 20, &all);
  ASSERT_EQ(all.size(), gen.num_papers());
  for (size_t i = 0; i < all.size(); i += 17) {
    const StreamedPaper p = gen.PaperAt(i);
    EXPECT_EQ(p.id, all[i].id);
    EXPECT_EQ(p.interest, all[i].interest);
    EXPECT_EQ(p.influence, all[i].influence);
  }
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].year, all[i].year);
    EXPECT_EQ(all[i].id, static_cast<int32_t>(i));
  }
  // The midpoint split leaves a non-trivial pool on each side.
  size_t newer = 0;
  for (const StreamedPaper& p : all) newer += p.year > gen.split_year();
  EXPECT_GT(newer, 0u);
  EXPECT_LT(newer, all.size());
  // Reset rewinds to paper 0.
  gen.Reset();
  std::vector<StreamedPaper> again;
  ASSERT_GT(gen.NextBatch(5, &again), 0u);
  EXPECT_EQ(again[0].id, all[0].id);
  EXPECT_EQ(again[0].interest, all[0].interest);
}

TEST(Streaming, PresetsScaleAndDegenerateConfigsAreRejected) {
  auto smoke = StreamingCorpusGenerator::Create(
      AnnRecallPreset(AnnCorpusScale::kSmoke, 1));
  auto full = StreamingCorpusGenerator::Create(
      AnnRecallPreset(AnnCorpusScale::kFull, 1));
  ASSERT_TRUE(smoke.ok() && full.ok());
  EXPECT_EQ(smoke.value().num_papers(), 4000u);
  EXPECT_EQ(full.value().num_papers(), 100000u);

  StreamingCorpusOptions bad = {};
  bad.end_year = bad.start_year - 1;
  EXPECT_FALSE(StreamingCorpusGenerator::Create(bad).ok());
  bad = {};
  bad.papers_per_year = 0;
  EXPECT_FALSE(StreamingCorpusGenerator::Create(bad).ok());
  bad = {};
  bad.embedding_dim = 0;
  EXPECT_FALSE(StreamingCorpusGenerator::Create(bad).ok());
  bad = {};
  bad.num_disciplines = 0;
  EXPECT_FALSE(StreamingCorpusGenerator::Create(bad).ok());
}

}  // namespace
}  // namespace subrec::datagen
