// Parameterized property sweeps across modules: invariants that must hold
// for ranges of shapes, seeds and hyperparameters rather than single
// examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "autodiff/grad_check.h"
#include "autodiff/tape.h"
#include "cluster/gmm.h"
#include "cluster/lof.h"
#include "common/rng.h"
#include "eval/metrics.h"
#include "eval/ranking.h"
#include "la/ops.h"
#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "rec/sampler.h"
#include "text/hashed_ngram_encoder.h"
#include "text/word2vec.h"

namespace subrec {
namespace {

// ---------------------------------------------------------------- autodiff

class AutodiffSeeds : public ::testing::TestWithParam<int> {};

TEST_P(AutodiffSeeds, RandomCompositeGraphGradChecks) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  auto scalar = [](const std::vector<la::Matrix>& params,
                   std::vector<la::Matrix>* grads) {
    autodiff::Tape tape;
    std::vector<autodiff::VarId> leaves;
    for (const auto& p : params) leaves.push_back(tape.Input(p, true));
    // softmax-attention + tanh MLP + sigmoid head, the library's shapes.
    autodiff::VarId h = tape.Tanh(tape.MatMul(leaves[0], leaves[1]));
    autodiff::VarId attn =
        tape.RowSoftmax(tape.Transpose(tape.MatMul(h, leaves[2])));
    autodiff::VarId pooled = tape.MatMul(attn, h);
    autodiff::VarId loss =
        tape.SigmoidBce(tape.MatMulTransB(pooled, leaves[3]),
                        la::Matrix(1, 1, 1.0));
    if (grads != nullptr) {
      tape.Backward(loss);
      grads->clear();
      for (autodiff::VarId leaf : leaves) grads->push_back(tape.grad(leaf));
    }
    return tape.value(loss)(0, 0);
  };
  std::vector<la::Matrix> params = {
      la::Matrix::Random(5, 6, rng), la::Matrix::Random(6, 4, rng),
      la::Matrix::Random(4, 1, rng), la::Matrix::Random(1, 4, rng)};
  const auto result = autodiff::CheckGradients(scalar, params);
  EXPECT_LT(result.max_rel_error, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutodiffSeeds, ::testing::Range(1, 9));

// ------------------------------------------------------------------ metrics

class NdcgProperties : public ::testing::TestWithParam<int> {};

TEST_P(NdcgProperties, BoundedAndMonotoneUnderImprovement) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 77);
  const int n = 30;
  std::vector<bool> rel(n);
  for (int i = 0; i < n; ++i) rel[static_cast<size_t>(i)] = rng.Bernoulli(0.2);
  if (std::none_of(rel.begin(), rel.end(), [](bool b) { return b; }))
    rel[5] = true;
  const double base = eval::NdcgAtK(rel, n);
  EXPECT_GE(base, 0.0);
  EXPECT_LE(base, 1.0);
  // Moving a relevant item earlier never decreases nDCG.
  std::vector<bool> improved = rel;
  for (int i = 1; i < n; ++i) {
    if (improved[static_cast<size_t>(i)] &&
        !improved[static_cast<size_t>(i - 1)]) {
      improved[static_cast<size_t>(i)] = false;
      improved[static_cast<size_t>(i - 1)] = true;
      break;
    }
  }
  EXPECT_GE(eval::NdcgAtK(improved, n) + 1e-12, base);
  // MRR and MAP bounded.
  EXPECT_LE(eval::ReciprocalRank(rel, n), 1.0);
  EXPECT_LE(eval::AveragePrecision(rel), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NdcgProperties, ::testing::Range(1, 10));

TEST(SpearmanProperties, SymmetricAndBounded) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> a(25), b(25);
    for (auto& x : a) x = rng.Gaussian();
    for (auto& x : b) x = rng.Gaussian();
    const double ab = eval::SpearmanCorrelation(a, b);
    EXPECT_NEAR(ab, eval::SpearmanCorrelation(b, a), 1e-12);
    EXPECT_LE(std::fabs(ab), 1.0 + 1e-12);
  }
}

// ------------------------------------------------------------------ cluster

class GmmDims : public ::testing::TestWithParam<int> {};

TEST_P(GmmDims, ResponsibilitiesNormalizedAcrossDims) {
  const size_t d = static_cast<size_t>(GetParam());
  Rng rng(31 + d);
  la::Matrix data(60, d);
  for (size_t i = 0; i < data.size(); ++i) data[i] = rng.Gaussian();
  cluster::GaussianMixture gmm(cluster::GmmOptions{.num_components = 3});
  ASSERT_TRUE(gmm.Fit(data).ok());
  const la::Matrix proba = gmm.PredictProba(data);
  for (size_t i = 0; i < proba.rows(); ++i) {
    double total = 0.0;
    for (size_t c = 0; c < proba.cols(); ++c) {
      EXPECT_GE(proba(i, c), 0.0);
      total += proba(i, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Weights form a distribution.
  double wsum = 0.0;
  for (double w : gmm.weights()) wsum += w;
  EXPECT_NEAR(wsum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Dims, GmmDims, ::testing::Values(1, 2, 4, 8, 16));

class LofKs : public ::testing::TestWithParam<int> {};

TEST_P(LofKs, ScoresPositiveAndOutlierDominates) {
  const int k = GetParam();
  Rng rng(41);
  la::Matrix data(51, 3);
  for (int i = 0; i < 50; ++i)
    for (int j = 0; j < 3; ++j)
      data(static_cast<size_t>(i), static_cast<size_t>(j)) = rng.Gaussian();
  for (int j = 0; j < 3; ++j) data(50, static_cast<size_t>(j)) = 40.0;
  auto lof = cluster::LocalOutlierFactor(data, k);
  ASSERT_TRUE(lof.ok());
  for (double v : lof.value()) EXPECT_GT(v, 0.0);
  const size_t argmax = static_cast<size_t>(
      std::max_element(lof.value().begin(), lof.value().end()) -
      lof.value().begin());
  EXPECT_EQ(argmax, 50u);
}

INSTANTIATE_TEST_SUITE_P(Ks, LofKs, ::testing::Values(2, 5, 10, 20));

// --------------------------------------------------------------------- text

TEST(EncoderProperties, CosineBoundedAndScaleFree) {
  text::HashedNgramEncoder encoder;
  Rng rng(51);
  const std::vector<std::string> sentences = {
      "graph networks for papers", "papers about graph networks",
      "clinical drug trials", "we propose subspace embeddings"};
  for (const auto& a : sentences) {
    for (const auto& b : sentences) {
      const double c =
          la::CosineSimilarity(encoder.Encode(a), encoder.Encode(b));
      EXPECT_LE(std::fabs(c), 1.0 + 1e-9);
    }
    // Repetition changes counts, not direction sign wildly: still valid.
    const double self =
        la::CosineSimilarity(encoder.Encode(a), encoder.Encode(a + " " + a));
    EXPECT_GT(self, 0.9);
  }
}

TEST(Word2VecProperties, DeterministicGivenSeed) {
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 30; ++i)
    corpus.push_back({"alpha", "beta", "gamma", "delta"});
  text::Word2VecOptions options;
  options.dim = 8;
  text::Word2Vec a(options), b(options);
  ASSERT_TRUE(a.Train(corpus).ok());
  ASSERT_TRUE(b.Train(corpus).ok());
  EXPECT_EQ(a.Embedding("alpha"), b.Embedding("alpha"));
}

// ------------------------------------------------------------------ sampler

class SamplerRatios : public ::testing::TestWithParam<int> {};

TEST_P(SamplerRatios, RealizedRatioTracksRequested) {
  static const datagen::GeneratedDataset* dataset = [] {
    auto r = datagen::GenerateCorpus(
        datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 61));
    SUBREC_CHECK(r.ok());
    return new datagen::GeneratedDataset(std::move(r).value());
  }();
  rec::RecContext ctx;
  ctx.corpus = &dataset->corpus;
  ctx.split_year = 2014;
  const auto split = datagen::SplitByYear(dataset->corpus, 2014);
  ctx.train_papers = split.train;
  ctx.test_papers = split.test;

  rec::SamplerOptions options;
  options.negatives_per_positive = GetParam();
  options.max_positives = 40;
  options.use_defuzzing = false;
  rec::DefuzzSampler sampler(options);
  const auto pairs = sampler.BuildPairs(ctx, nullptr);
  int pos = 0, neg = 0;
  for (const auto& p : pairs) (p.label > 0.5 ? pos : neg)++;
  ASSERT_GT(pos, 0);
  EXPECT_NEAR(static_cast<double>(neg) / pos,
              static_cast<double>(GetParam()), 0.25 * GetParam() + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Ratios, SamplerRatios, ::testing::Values(1, 5, 10));

}  // namespace
}  // namespace subrec
