#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "ann/exact_index.h"
#include "ann/hnsw_index.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/wire.h"

namespace subrec::ann {
namespace {

/// Clustered test vectors: `clusters` Gaussian blobs, lognormal-ish norm
/// spread so maximum-inner-product order differs from cosine order.
struct TestVectors {
  std::vector<int32_t> ids;
  std::vector<double> vectors;
  size_t dim = 0;
};

TestVectors MakeClustered(size_t n, size_t dim, int clusters, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> centers(
      static_cast<size_t>(clusters), std::vector<double>(dim));
  for (auto& c : centers)
    for (double& v : c) v = rng.Gaussian(0.0, 1.0);
  TestVectors out;
  out.dim = dim;
  out.ids.reserve(n);
  out.vectors.reserve(n * dim);
  for (size_t i = 0; i < n; ++i) {
    // Non-contiguous external ids so tests catch internal/external mixups.
    out.ids.push_back(static_cast<int32_t>(i * 3 + 7));
    const auto& c = centers[i % static_cast<size_t>(clusters)];
    const double scale = 0.5 + rng.UniformDouble();
    for (size_t d = 0; d < dim; ++d)
      out.vectors.push_back(scale * (c[d] + rng.Gaussian(0.0, 0.3)));
  }
  return out;
}

std::vector<double> MakeQuery(size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> q(dim);
  for (double& v : q) v = rng.Gaussian(0.0, 1.0);
  return q;
}

std::unique_ptr<HnswIndex> BuildOrDie(const TestVectors& tv,
                                      const HnswOptions& options = {}) {
  auto built = HnswIndex::Build(tv.ids, tv.vectors, tv.dim, options);
  SUBREC_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

// --- ExactIndex -----------------------------------------------------------

TEST(ExactIndex, ReturnsDescendingScoresWithAscendingIdTies) {
  // Two items with identical vectors force a score tie.
  const std::vector<int32_t> ids = {9, 4, 1};
  const std::vector<double> vectors = {1.0, 0.0, 1.0, 0.0, 0.0, 1.0};
  ExactIndex index(ids, vectors, 2);
  std::vector<Neighbor> out;
  ASSERT_TRUE(index.Search({1.0, 0.0}, 3, 0, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 4);  // tie with 9 broken by ascending id
  EXPECT_EQ(out[1].id, 9);
  EXPECT_EQ(out[2].id, 1);
  EXPECT_DOUBLE_EQ(out[0].score, 1.0);
  EXPECT_DOUBLE_EQ(out[2].score, 0.0);
}

TEST(ExactIndex, ClampsKAndValidatesQuery) {
  const TestVectors tv = MakeClustered(10, 4, 2, 11);
  ExactIndex index(tv.ids, tv.vectors, tv.dim);
  std::vector<Neighbor> out;
  ASSERT_TRUE(index.Search(MakeQuery(4, 1), 50, 0, &out).ok());
  EXPECT_EQ(out.size(), 10u);  // k > n returns everything
  EXPECT_FALSE(index.Search(MakeQuery(3, 1), 5, 0, &out).ok());
  EXPECT_FALSE(index.Search(MakeQuery(4, 1), 0, 0, &out).ok());
}

TEST(ExactIndex, PopulatesSearchStats) {
  const TestVectors tv = MakeClustered(32, 4, 2, 13);
  ExactIndex index(tv.ids, tv.vectors, tv.dim);
  std::vector<Neighbor> out;
  SearchStats stats;
  ASSERT_TRUE(index.Search(MakeQuery(4, 2), 5, 0, &out, &stats).ok());
  EXPECT_EQ(stats.distance_evals, 32);
  EXPECT_EQ(stats.nodes_visited, 32);
}

// --- HnswIndex: search quality against the oracle -------------------------

TEST(HnswIndex, MatchesExactOracleOnHighEf) {
  const TestVectors tv = MakeClustered(500, 8, 5, 21);
  ExactIndex exact(tv.ids, tv.vectors, tv.dim);
  const auto hnsw = BuildOrDie(tv);

  double recall_sum = 0.0;
  constexpr int kQueries = 20;
  constexpr int kTopK = 10;
  for (int q = 0; q < kQueries; ++q) {
    const auto query = MakeQuery(tv.dim, 100 + static_cast<uint64_t>(q));
    std::vector<Neighbor> truth, approx;
    ASSERT_TRUE(exact.Search(query, kTopK, 0, &truth).ok());
    ASSERT_TRUE(hnsw->Search(query, kTopK, 128, &approx).ok());
    ASSERT_EQ(truth.size(), approx.size());
    // Contract: descending score, ties ascending id.
    for (size_t i = 1; i < approx.size(); ++i) {
      EXPECT_TRUE(approx[i - 1].score > approx[i].score ||
                  (approx[i - 1].score == approx[i].score &&
                   approx[i - 1].id < approx[i].id));
    }
    size_t hit = 0;
    for (const Neighbor& t : truth)
      for (const Neighbor& a : approx)
        if (a.id == t.id) {
          ++hit;
          break;
        }
    recall_sum += static_cast<double>(hit) / kTopK;
  }
  // Deterministic build + deterministic queries: this is an equality-like
  // gate on graph quality, not a flaky statistical bound.
  EXPECT_GE(recall_sum / kQueries, 0.95);
}

TEST(HnswIndex, TinyIndexIsExhaustive) {
  // n <= beam width AND the level-0 degree cap (2*M = 16) exceeds the 15
  // possible back-links, so diversity pruning never fires and every node
  // stays reachable: results must equal the exact scan item for item.
  const TestVectors tv = MakeClustered(16, 4, 2, 31);
  ExactIndex exact(tv.ids, tv.vectors, tv.dim);
  const auto hnsw = BuildOrDie(tv, HnswOptions{8, 16, 1});
  const auto query = MakeQuery(tv.dim, 3);
  std::vector<Neighbor> truth, approx;
  ASSERT_TRUE(exact.Search(query, 16, 0, &truth).ok());
  ASSERT_TRUE(hnsw->Search(query, 16, 32, &approx).ok());
  ASSERT_EQ(truth.size(), approx.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(truth[i].id, approx[i].id) << i;
    EXPECT_EQ(truth[i].score, approx[i].score) << i;
  }
}

TEST(HnswIndex, EmptyIndexSearchesCleanly) {
  auto built = HnswIndex::Build({}, {}, 4, HnswOptions{});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto& index = built.value();
  EXPECT_EQ(index->size(), 0u);
  EXPECT_EQ(index->max_level(), -1);
  std::vector<Neighbor> out = {Neighbor{1, 2.0}};
  ASSERT_TRUE(index->Search(MakeQuery(4, 5), 3, 16, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(HnswIndex, BuildRejectsBadShapesAndOptions) {
  EXPECT_FALSE(HnswIndex::Build({1}, {1.0, 2.0}, 0, {}).ok());
  EXPECT_FALSE(HnswIndex::Build({1, 2}, {1.0, 2.0}, 2, {}).ok());  // 2x2 != 2
  HnswOptions bad_m;
  bad_m.M = 1;
  EXPECT_FALSE(HnswIndex::Build({1}, {1.0}, 1, bad_m).ok());
  HnswOptions bad_ef;
  bad_ef.ef_construction = bad_ef.M - 1;
  EXPECT_FALSE(HnswIndex::Build({1}, {1.0}, 1, bad_ef).ok());
  // Build must enforce the same ef_construction ceiling Deserialize does;
  // otherwise an index could be built and serialized but never loaded.
  HnswOptions huge_ef;
  huge_ef.ef_construction = (1 << 20) + 1;
  EXPECT_FALSE(HnswIndex::Build({1}, {1.0}, 1, huge_ef).ok());
  HnswOptions max_ef;
  max_ef.ef_construction = 1 << 20;
  const auto at_cap = HnswIndex::Build({1}, {1.0}, 1, max_ef);
  ASSERT_TRUE(at_cap.ok()) << at_cap.status().ToString();
  EXPECT_TRUE(HnswIndex::Deserialize(at_cap.value()->Serialize()).ok());
}

TEST(HnswIndex, SearchValidatesArguments) {
  const TestVectors tv = MakeClustered(20, 4, 2, 41);
  const auto hnsw = BuildOrDie(tv);
  std::vector<Neighbor> out;
  EXPECT_FALSE(hnsw->Search(MakeQuery(3, 1), 5, 16, &out).ok());
  EXPECT_FALSE(hnsw->Search(MakeQuery(4, 1), 0, 16, &out).ok());
  SearchStats stats;
  ASSERT_TRUE(hnsw->Search(MakeQuery(4, 1), 5, 16, &out, &stats).ok());
  EXPECT_GT(stats.nodes_visited, 0);
  EXPECT_GT(stats.distance_evals, 0);
}

// --- Serialization --------------------------------------------------------

TEST(HnswIndex, SerializeRoundTripsExactly) {
  const TestVectors tv = MakeClustered(200, 6, 3, 51);
  const auto original = BuildOrDie(tv);
  const std::string bytes = original->Serialize();
  auto restored = HnswIndex::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const auto& copy = restored.value();
  EXPECT_EQ(copy->size(), original->size());
  EXPECT_EQ(copy->dim(), original->dim());
  EXPECT_EQ(copy->M(), original->M());
  EXPECT_EQ(copy->ef_construction(), original->ef_construction());
  EXPECT_EQ(copy->seed(), original->seed());
  EXPECT_EQ(copy->max_level(), original->max_level());
  // Byte-for-byte re-serialization is the strongest round-trip check.
  EXPECT_EQ(copy->Serialize(), bytes);
  // And identical search behavior.
  const auto query = MakeQuery(tv.dim, 7);
  std::vector<Neighbor> a, b;
  ASSERT_TRUE(original->Search(query, 10, 64, &a).ok());
  ASSERT_TRUE(copy->Search(query, 10, 64, &b).ok());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

TEST(HnswIndex, EmptyIndexRoundTrips) {
  auto built = HnswIndex::Build({}, {}, 3, HnswOptions{});
  ASSERT_TRUE(built.ok());
  const std::string bytes = built.value()->Serialize();
  auto restored = HnswIndex::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->size(), 0u);
  EXPECT_EQ(restored.value()->Serialize(), bytes);
}

TEST(HnswIndex, DeserializeRejectsMalformedInputWithoutCrashing) {
  const TestVectors tv = MakeClustered(64, 4, 2, 61);
  const std::string good = BuildOrDie(tv)->Serialize();

  EXPECT_FALSE(HnswIndex::Deserialize("").ok());
  EXPECT_FALSE(HnswIndex::Deserialize("SUBRANN1").ok());

  // Every truncation point must come back as a Status, never a crash.
  for (size_t len = 0; len < good.size(); len += 13)
    EXPECT_FALSE(HnswIndex::Deserialize(good.substr(0, len)).ok())
        << "truncated to " << len;

  // Trailing garbage is rejected, not silently ignored.
  EXPECT_FALSE(HnswIndex::Deserialize(good + "x").ok());

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(HnswIndex::Deserialize(bad_magic).ok());

  std::string bad_version = good;
  bad_version[8] = 99;
  const auto version_result = HnswIndex::Deserialize(bad_version);
  ASSERT_FALSE(version_result.ok());
  EXPECT_NE(version_result.status().message().find("version"),
            std::string::npos);

  // Entry node out of range: i32 at offset 8+4+4+8+4+4+8+4 = 44.
  std::string bad_entry = good;
  bad_entry[44] = static_cast<char>(0xFF);
  bad_entry[45] = static_cast<char>(0xFF);
  bad_entry[46] = static_cast<char>(0x7F);
  bad_entry[47] = static_cast<char>(0x7F);
  EXPECT_FALSE(HnswIndex::Deserialize(bad_entry).ok());

  // Single-byte corruption sweep: any byte may flip. Parses may succeed
  // (vector payload bytes are all valid doubles) but must never crash,
  // and whatever parses must still serialize to the same length.
  for (size_t pos = 0; pos < good.size(); pos += 31) {
    std::string corrupt = good;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5A);
    auto result = HnswIndex::Deserialize(corrupt);
    if (result.ok()) {
      EXPECT_GT(result.value()->Serialize().size(), 0u);
    }
  }
}

// --- Wire format: golden snapshot + capacity boundaries -------------------

std::string ReadGoldenOrDie(const std::string& name) {
  const std::string path = std::string(SUBREC_TEST_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  SUBREC_CHECK(in.good()) << "missing golden fixture " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Link-count census parsed straight off Serialize() bytes, independently
/// of the arena accessors — the capacity-boundary tests cross-check the
/// encoder against the documented v1 layout rather than against itself.
struct WireCensus {
  size_t n = 0;
  uint32_t m = 0;
  std::vector<int32_t> levels;
  /// Byte offset of the first link count (node 0, level 0).
  size_t graph_offset = 0;
  size_t level0_full_rows = 0;  // rows at the 2M capacity
  size_t level0_empty_rows = 0;
  size_t level0_only_nodes = 0;  // nodes with no upper-level rows
  uint32_t max_upper_count = 0;
  size_t multi_level_nodes = 0;
};

WireCensus ScanWire(const std::string& bytes) {
  wire::Cursor c(bytes);
  WireCensus w;
  uint64_t magic = 0, n = 0, seed = 0;
  uint32_t version = 0, dim = 0, ef = 0;
  int32_t max_level = 0, entry = 0, skip = 0;
  double dskip = 0.0;
  SUBREC_CHECK(c.ReadU64(&magic).ok());
  SUBREC_CHECK(c.ReadU32(&version).ok());
  SUBREC_CHECK(c.ReadU32(&dim).ok());
  SUBREC_CHECK(c.ReadU64(&n).ok());
  SUBREC_CHECK(c.ReadU32(&w.m).ok());
  SUBREC_CHECK(c.ReadU32(&ef).ok());
  SUBREC_CHECK(c.ReadU64(&seed).ok());
  SUBREC_CHECK(c.ReadI32(&max_level).ok());
  SUBREC_CHECK(c.ReadI32(&entry).ok());
  w.n = static_cast<size_t>(n);
  w.levels.resize(w.n);
  for (int32_t& level : w.levels) SUBREC_CHECK(c.ReadI32(&level).ok());
  for (size_t i = 0; i < w.n; ++i) SUBREC_CHECK(c.ReadI32(&skip).ok());
  for (size_t i = 0; i < w.n * dim; ++i)
    SUBREC_CHECK(c.ReadDouble(&dskip).ok());
  // Header (48 bytes) + levels + ids + vector slab.
  w.graph_offset = 48 + w.n * 8 + w.n * static_cast<size_t>(dim) * 8;
  for (size_t i = 0; i < w.n; ++i) {
    if (w.levels[i] == 0)
      ++w.level0_only_nodes;
    else
      ++w.multi_level_nodes;
    for (int32_t lev = 0; lev <= w.levels[i]; ++lev) {
      uint32_t count = 0;
      SUBREC_CHECK(c.ReadU32(&count).ok());
      if (lev == 0 && count == 2 * w.m) ++w.level0_full_rows;
      if (lev == 0 && count == 0) ++w.level0_empty_rows;
      if (lev > 0) w.max_upper_count = std::max(w.max_upper_count, count);
      for (uint32_t t = 0; t < count; ++t)
        SUBREC_CHECK(c.ReadI32(&skip).ok());
    }
  }
  SUBREC_CHECK(c.remaining() == 0);
  return w;
}

TEST(HnswIndex, SerializeMatchesPreRefactorGolden) {
  // The checked-in fixture is the Serialize() output of the pre-arena
  // implementation over this exact corpus and options. Both build paths —
  // the arena/SIMD default and the legacy_build A/B baseline — must still
  // reproduce it byte for byte: the refactor changed the data structures
  // and kernels, never the graph or the wire format.
  const TestVectors tv = MakeClustered(240, 8, 4, 97);
  HnswOptions options;
  options.M = 8;
  options.ef_construction = 64;
  options.seed = 0x60D1DEA5ULL;
  const std::string golden = ReadGoldenOrDie("hnsw_v1_prerefactor.bin");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(BuildOrDie(tv, options)->Serialize(), golden);

  HnswOptions legacy = options;
  legacy.legacy_build = true;
  EXPECT_EQ(BuildOrDie(tv, legacy)->Serialize(), golden);

  // And the pre-refactor bytes still load and re-serialize unchanged.
  auto restored = HnswIndex::Deserialize(golden);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->Serialize(), golden);
}

TEST(HnswIndex, WireRoundTripsAtRowCapacityBoundaries) {
  // Zero-link boundary: a single node has nothing to point at, so every
  // row it serializes is an empty count.
  {
    auto single = HnswIndex::Build({42}, {1.0, 2.0}, 2, HnswOptions{});
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    const std::string bytes = single.value()->Serialize();
    const WireCensus w = ScanWire(bytes);
    EXPECT_EQ(w.n, 1u);
    EXPECT_GE(w.level0_empty_rows, 1u);
    EXPECT_EQ(w.max_upper_count, 0u);
    auto restored = HnswIndex::Deserialize(bytes);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored.value()->Serialize(), bytes);
  }

  // Full-row boundary: the smallest legal M over a dense corpus drives
  // level-0 rows to the 2M cap and upper rows to M, while plenty of nodes
  // stay level-0-only — every arena row shape crosses the wire at once.
  {
    const TestVectors tv = MakeClustered(160, 4, 2, 91);
    HnswOptions options;
    options.M = 2;
    options.ef_construction = 32;
    const auto index = BuildOrDie(tv, options);
    const std::string bytes = index->Serialize();
    const WireCensus w = ScanWire(bytes);
    EXPECT_GT(w.level0_full_rows, 0u) << "no level-0 row hit the 2M cap";
    EXPECT_GT(w.level0_only_nodes, 0u);
    EXPECT_GT(w.multi_level_nodes, 0u);
    EXPECT_EQ(w.max_upper_count, 2u) << "no upper row hit the M cap";

    auto restored = HnswIndex::Deserialize(bytes);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored.value()->Serialize(), bytes);

    // Identical search behavior through the round trip.
    const auto query = MakeQuery(tv.dim, 9);
    std::vector<Neighbor> a, b;
    ASSERT_TRUE(index->Search(query, 8, 32, &a).ok());
    ASSERT_TRUE(restored.value()->Search(query, 8, 32, &b).ok());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
}

TEST(HnswIndex, DeserializeRejectsLinkCountAboveRowCapacity) {
  const TestVectors tv = MakeClustered(48, 4, 2, 87);
  HnswOptions options;
  options.M = 4;
  options.ef_construction = 32;
  std::string bytes = BuildOrDie(tv, options)->Serialize();
  const WireCensus w = ScanWire(bytes);

  // Patch node 0's level-0 link count to one past the 2M row capacity.
  // The capacity check must fire on the count alone — before any link is
  // read — so no compensating payload edit can smuggle an oversized row
  // into the fixed-capacity arena.
  const uint32_t bad = 2 * w.m + 1;
  for (int b = 0; b < 4; ++b)
    bytes[w.graph_offset + static_cast<size_t>(b)] =
        static_cast<char>((bad >> (8 * b)) & 0xFF);
  const auto result = HnswIndex::Deserialize(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("capacity"), std::string::npos)
      << result.status().ToString();
}

// --- Determinism ----------------------------------------------------------

TEST(HnswIndex, SameSeedBuildsAreByteIdentical) {
  const TestVectors tv = MakeClustered(300, 6, 3, 71);
  const auto a = BuildOrDie(tv);
  const auto b = BuildOrDie(tv);
  EXPECT_EQ(a->Serialize(), b->Serialize());

  HnswOptions other_seed;
  other_seed.seed = 0xABCDEF;
  const auto c = BuildOrDie(tv, other_seed);
  EXPECT_NE(a->Serialize(), c->Serialize());
}

}  // namespace
}  // namespace subrec::ann
