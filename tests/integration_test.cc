#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/lof.h"
#include "common/rng.h"
#include "datagen/corpus_generator.h"
#include "datagen/datasets.h"
#include "datagen/split.h"
#include "eval/metrics.h"
#include "graph/academic_graph.h"
#include "labeling/trainer.h"
#include "rec/candidate_sets.h"
#include "rec/nprec.h"
#include "rec/svd.h"
#include "rules/expert_rules.h"
#include "subspace/sem_model.h"
#include "text/hashed_ngram_encoder.h"

namespace subrec {
namespace {

/// End-to-end SEM pipeline on a tiny corpus: train the sentence labeler on
/// gold roles, embed papers with the trained twin network, compute LOF
/// outlier scores per subspace and check they correlate positively with
/// citations — the Sec. III headline claim in miniature.
TEST(Integration, SemDifferenceCorrelatesWithCitations) {
  auto generated = datagen::GenerateCorpus(
      datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 1717));
  ASSERT_TRUE(generated.ok());
  const auto& dataset = generated.value();
  const corpus::Corpus& corpus = dataset.corpus;

  // 1. Sentence-function labeler trained on one slice of gold roles.
  std::vector<std::vector<std::string>> train_abs;
  std::vector<std::vector<int>> train_roles;
  for (int i = 0; i < 100; ++i) {
    train_abs.push_back(corpus.AbstractOf(i));
    std::vector<int> roles;
    for (const auto& s : corpus.papers[static_cast<size_t>(i)].abstract_sentences)
      roles.push_back(s.role);
    train_roles.push_back(std::move(roles));
  }
  labeling::SentenceLabeler labeler(3);
  ASSERT_TRUE(labeler.Train(train_abs, train_roles).ok());

  // 2. Content features with PREDICTED roles (as the real pipeline must).
  text::HashedNgramEncoderOptions enc_options;
  enc_options.dim = 32;
  text::HashedNgramEncoder encoder(enc_options);
  rules::ExpertRuleEngine engine(&dataset.ccs, &encoder, nullptr);
  std::vector<rules::PaperContentFeatures> features;
  for (const auto& p : corpus.papers)
    features.push_back(
        engine.ComputeFeatures(p, labeler.Label(corpus.AbstractOf(p.id))));

  // 3. Twin network on history (CS discipline, pre-2013).
  const auto history = datagen::PapersOfDiscipline(corpus, 0, 2008, 2012);
  ASSERT_GT(history.size(), 40u);
  subspace::SemModelOptions sem_options;
  sem_options.encoder.input_dim = 32;
  sem_options.encoder.hidden_dim = 32;  // residual fine-tuning
  sem_options.encoder.attention_dim = 8;
  sem_options.miner.num_candidates = 400;
  sem_options.trainer.epochs = 2;
  subspace::SemModel sem(sem_options);
  ASSERT_TRUE(sem.Fit(corpus, history, features, engine).ok());

  // 4. "New papers" of 2013, embedded together with the history, LOF per
  // subspace, correlated against citations. CS weights methods most, so
  // the method subspace must carry positive signal.
  const auto new_papers = datagen::PapersOfDiscipline(corpus, 0, 2013, 2013);
  ASSERT_GT(new_papers.size(), 10u);
  std::vector<corpus::PaperId> all = history;
  all.insert(all.end(), new_papers.begin(), new_papers.end());

  std::vector<double> citations;
  for (corpus::PaperId pid : new_papers)
    citations.push_back(static_cast<double>(corpus.paper(pid).citation_count));

  double best_corr = -1.0;
  for (int k = 0; k < 3; ++k) {
    const la::Matrix emb = sem.SubspaceEmbeddingMatrix(features, all, k);
    auto lof = cluster::LocalOutlierFactor(emb, 8);
    ASSERT_TRUE(lof.ok());
    std::vector<double> new_lof(lof.value().end() -
                                    static_cast<long>(new_papers.size()),
                                lof.value().end());
    best_corr = std::max(best_corr,
                         eval::SpearmanCorrelation(new_lof, citations));
  }
  EXPECT_GT(best_corr, 0.15);
}

/// End-to-end recommendation: NPRec must beat the cold-start-blind SVD
/// baseline on the same candidate sets — the Tab. IV headline in miniature.
TEST(Integration, NPRecBeatsSvdOnNewPaperRecommendation) {
  auto generated = datagen::GenerateCorpus(
      datagen::ScopusLikeOptions(datagen::DatasetScale::kTiny, 2024));
  ASSERT_TRUE(generated.ok());
  const auto& dataset = generated.value();
  const auto split = datagen::SplitByYear(dataset.corpus, 2014);

  graph::GraphBuildOptions graph_options;
  graph_options.citation_year_cutoff = 2014;
  const graph::GraphIndex index =
      graph::BuildAcademicGraph(dataset.corpus, graph_options);

  // Frozen-encoder subspace stand-ins (fast; the SEM-trained variant is
  // exercised by the benches).
  text::HashedNgramEncoderOptions enc_options;
  enc_options.dim = 24;
  text::HashedNgramEncoder encoder(enc_options);
  rec::SubspaceEmbeddings subspace;
  std::vector<std::vector<double>> text_vec;
  for (const auto& p : dataset.corpus.papers) {
    std::vector<std::vector<double>> subs(3, std::vector<double>(24, 0.0));
    std::vector<int> counts(3, 0);
    for (const auto& s : p.abstract_sentences) {
      const auto v = encoder.Encode(s.text);
      for (size_t j = 0; j < v.size(); ++j)
        subs[static_cast<size_t>(s.role)][j] += v[j];
      ++counts[static_cast<size_t>(s.role)];
    }
    std::vector<double> fused(24, 0.0);
    for (int k = 0; k < 3; ++k) {
      if (counts[static_cast<size_t>(k)] > 0)
        for (double& x : subs[static_cast<size_t>(k)])
          x /= counts[static_cast<size_t>(k)];
      for (size_t j = 0; j < 24; ++j)
        fused[j] += subs[static_cast<size_t>(k)][j] / 3.0;
    }
    subspace.push_back(std::move(subs));
    text_vec.push_back(std::move(fused));
  }

  rec::RecContext ctx;
  ctx.corpus = &dataset.corpus;
  ctx.graph = &index;
  ctx.split_year = 2014;
  ctx.train_papers = split.train;
  ctx.test_papers = split.test;
  ctx.paper_text = &text_vec;

  const auto users = datagen::SelectUsers(dataset.corpus, 2014, 2);
  ASSERT_GT(users.size(), 5u);
  Rng rng(3);
  std::vector<rec::CandidateSet> sets;
  for (corpus::AuthorId u : users)
    sets.push_back(rec::BuildCandidateSet(ctx, u, 20, rng));

  rec::NPRecOptions nprec_options;
  nprec_options.embed_dim = 16;
  nprec_options.neighbor_samples = 4;
  nprec_options.epochs = 2;
  nprec_options.sampler.max_positives = 300;
  rec::NPRec nprec(nprec_options, &subspace);
  ASSERT_TRUE(nprec.Fit(ctx).ok());

  rec::SvdRecommender svd;
  ASSERT_TRUE(svd.Fit(ctx).ok());

  const auto nprec_result = rec::EvaluateRecommender(ctx, nprec, sets, 20);
  const auto svd_result = rec::EvaluateRecommender(ctx, svd, sets, 20);
  EXPECT_GT(nprec_result.ndcg, svd_result.ndcg);
  EXPECT_GT(nprec_result.ndcg, 0.5);
}

}  // namespace
}  // namespace subrec
