// Serving-path observability: windowed aggregation, the flight recorder,
// the ServeObserver hub, exposition formats, and the RecommendService
// integration. Includes the disabled-path contract test (zero per-request
// heap allocations; the only request-path cost is the one relaxed load in
// ServeObserver::enabled()) backed by a counting global operator new.
#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ann/hnsw_index.h"
#include "common/logging.h"
#include "gtest/gtest.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/serve_observer.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "serve/service.h"
#include "serve/snapshot.h"

// --- Allocation probe -------------------------------------------------------
// Replacing the global allocation functions is binary-wide, so the probe must
// stay semantically identical to the defaults: malloc/free pass-through plus
// one thread-local counter bump. Each thread counts only its own allocations,
// which keeps the probe race-free without any synchronization.

namespace {

thread_local int64_t g_thread_allocs = 0;
thread_local int64_t g_thread_alloc_bytes = 0;

void* ProbeAlloc(std::size_t size) {
  g_thread_allocs += 1;
  g_thread_alloc_bytes += static_cast<int64_t>(size);
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) std::abort();
  return p;
}

void* ProbeAlignedAlloc(std::size_t size, std::size_t align) {
  g_thread_allocs += 1;
  g_thread_alloc_bytes += static_cast<int64_t>(size);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded > 0 ? rounded : align);
  if (p == nullptr) std::abort();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return ProbeAlloc(size); }
void* operator new[](std::size_t size) { return ProbeAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return ProbeAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ProbeAlignedAlloc(size, static_cast<std::size_t>(align));
}
// The nothrow variants MUST be replaced too: libstdc++'s
// std::get_temporary_buffer (stable_sort) allocates through nothrow new,
// and pairing the default nothrow new with the probe's free-based delete
// trips ASan's alloc-dealloc-mismatch on every stable_sort call.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_thread_allocs += 1;
  return std::malloc(size > 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_thread_allocs += 1;
  return std::malloc(size > 0 ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  g_thread_allocs += 1;
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  return std::aligned_alloc(a, rounded > 0 ? rounded : a);
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  g_thread_allocs += 1;
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  return std::aligned_alloc(a, rounded > 0 ? rounded : a);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace subrec {
namespace {

/// Allocations made by the calling thread while `fn` runs.
template <typename Fn>
int64_t CountAllocations(Fn&& fn) {
  const int64_t before = g_thread_allocs;
  fn();
  return g_thread_allocs - before;
}

/// Bytes requested from the allocator by the calling thread while `fn`
/// runs (cumulative; frees are not subtracted, which is exactly what a
/// transient-copy regression needs to see).
template <typename Fn>
int64_t CountAllocatedBytes(Fn&& fn) {
  const int64_t before = g_thread_alloc_bytes;
  fn();
  return g_thread_alloc_bytes - before;
}

// --- Minimal JSON acceptor --------------------------------------------------
// Validates structure, string escaping (including \uXXXX), and rejects raw
// control characters — enough to prove every exported document parses.

class JsonChecker {
 public:
  static bool Valid(std::string_view text) {
    JsonChecker c(text);
    c.SkipWs();
    if (!c.Value()) return false;
    c.SkipWs();
    return c.pos_ == c.text_.size();
  }

 private:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Eat(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool String() {
    if (!Eat('"')) return false;
    while (!AtEnd()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return true;
      if (c < 0x20) return false;  // raw control characters are invalid
      if (c == '\\') {
        if (AtEnd()) return false;
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
            ++pos_;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
    }
    return false;
  }
  bool Number() {
    const size_t start = pos_;
    bool digit = false;
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digit = true;
        ++pos_;
      } else if (c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    return digit && pos_ > start;
  }
  bool Object() {
    Eat('{');
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      if (!Value()) return false;
      SkipWs();
      if (Eat(',')) continue;
      return Eat('}');
    }
  }
  bool Array() {
    Eat('[');
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (Eat(',')) continue;
      return Eat(']');
    }
  }
  bool Value() {
    SkipWs();
    if (AtEnd()) return false;
    const char c = Peek();
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool Contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

// --- RequestTrace -----------------------------------------------------------

TEST(RequestTrace, WriteJsonEmitsNonzeroStagesOnly) {
  obs::RequestTrace t;
  t.id = 7;
  t.user = 3;
  t.n = 10;
  t.generation = 2;
  t.total_ns = 5'000;
  t.candidate_count = 4;
  t.result_count = 2;
  t.cache_hit = false;
  t.candidate_source = "topic_pruned";
  t.stage_ns[static_cast<int>(obs::Stage::kScore)] = 3'000;
  obs::JsonWriter w;
  t.WriteJson(&w);
  const std::string json = w.str();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_TRUE(Contains(json, "\"stages_us\"")) << json;
  EXPECT_TRUE(Contains(json, "\"score\"")) << json;
  EXPECT_FALSE(Contains(json, "\"queue\"")) << json;
  EXPECT_TRUE(Contains(json, "\"candidate_source\":\"topic_pruned\"")) << json;
}

TEST(RequestTrace, ScoreBreakdownStagesSerializeWithNames) {
  obs::RequestTrace t;
  t.stage_ns[static_cast<int>(obs::Stage::kScore)] = 4'000;
  t.stage_ns[static_cast<int>(obs::Stage::kScoreGather)] = 1'000;
  t.stage_ns[static_cast<int>(obs::Stage::kScoreGemm)] = 2'000;
  t.stage_ns[static_cast<int>(obs::Stage::kScoreEpilogue)] = 500;
  obs::JsonWriter w;
  t.WriteJson(&w);
  const std::string json = w.str();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_TRUE(Contains(json, "\"score_gather\"")) << json;
  EXPECT_TRUE(Contains(json, "\"score_gemm\"")) << json;
  EXPECT_TRUE(Contains(json, "\"score_epilogue\"")) << json;
}

TEST(RequestTrace, NullStageTimerIsANoOp) {
  obs::RequestTrace t;
  { obs::StageTimer timer(nullptr, obs::Stage::kScore); }
  for (int s = 0; s < obs::kNumStages; ++s) EXPECT_EQ(t.stage_ns[s], 0);
  { obs::StageTimer timer(&t, obs::Stage::kSelect); }
  EXPECT_GE(t.stage_ns[static_cast<int>(obs::Stage::kSelect)], 0);
}

// --- WindowedAggregator -----------------------------------------------------

TEST(WindowedAggregator, SingleBurstCountsRatesAndPercentiles) {
  obs::WindowOptions wo;
  wo.slice_ns = 1'000'000'000;
  wo.num_slices = 64;
  wo.num_stripes = 2;
  wo.latency_bounds_us = {10.0, 50.0, 100.0};
  wo.window_ns = {1'000'000'000, 10'000'000'000};
  obs::WindowedAggregator agg(wo);

  const int64_t now = 100'000'000'000;  // epoch 100 of 1s slices
  for (int i = 0; i < 100; ++i) {
    agg.Record(now, 30.0, /*error=*/i < 10, /*cache_hit=*/i < 25,
               /*shed=*/i < 5);
  }

  const obs::WindowSnapshot snap = agg.Snapshot(now);
  ASSERT_EQ(snap.windows.size(), 2u);
  const obs::WindowStats& w1 = snap.Closest(1.0);
  EXPECT_NEAR(w1.window_seconds, 1.0, 1e-12);
  EXPECT_EQ(w1.requests, 100);
  EXPECT_EQ(w1.errors, 10);
  EXPECT_EQ(w1.cache_hits, 25);
  EXPECT_EQ(w1.shed, 5);
  EXPECT_NEAR(w1.qps, 100.0, 1e-9);
  EXPECT_NEAR(w1.mean_us, 30.0, 1e-9);
  // All 100 observations sit in the (10, 50] bucket; uniform-within-bucket
  // interpolation puts pN at 10 + 40 * N/100.
  EXPECT_NEAR(w1.p50_us, 30.0, 1e-9);
  EXPECT_NEAR(w1.p95_us, 48.0, 1e-9);
  EXPECT_NEAR(w1.p99_us, 49.6, 1e-9);
  EXPECT_NEAR(w1.error_rate, 0.10, 1e-12);
  EXPECT_NEAR(w1.cache_hit_rate, 0.25, 1e-12);
  EXPECT_NEAR(w1.shed_rate, 0.05, 1e-12);

  const obs::WindowStats& w10 = snap.Closest(10.0);
  EXPECT_EQ(w10.requests, 100);
  EXPECT_NEAR(w10.qps, 10.0, 1e-9);  // same burst over a 10x longer window
}

TEST(WindowedAggregator, SlicesAgeOutOfShortWindowsFirst) {
  obs::WindowOptions wo;
  wo.slice_ns = 1'000'000'000;
  wo.num_slices = 16;
  wo.num_stripes = 1;
  wo.window_ns = {1'000'000'000, 10'000'000'000};
  obs::WindowedAggregator agg(wo);

  agg.Record(5'500'000'000, 20.0, false, false, false);  // epoch 5

  // Same epoch: both windows see it.
  EXPECT_EQ(agg.Snapshot(5'900'000'000).Closest(1.0).requests, 1);
  EXPECT_EQ(agg.Snapshot(5'900'000'000).Closest(10.0).requests, 1);
  // One epoch later the 1s window is empty but the 10s window still counts.
  const obs::WindowSnapshot later = agg.Snapshot(6'500'000'000);
  EXPECT_EQ(later.Closest(1.0).requests, 0);
  EXPECT_NEAR(later.Closest(1.0).qps, 0.0, 1e-12);
  EXPECT_NEAR(later.Closest(1.0).p99_us, 0.0, 1e-12);
  EXPECT_EQ(later.Closest(10.0).requests, 1);
  // Far in the future everything has aged out — no stale counts.
  const obs::WindowSnapshot quiet = agg.Snapshot(60'000'000'000);
  EXPECT_EQ(quiet.Closest(1.0).requests, 0);
  EXPECT_EQ(quiet.Closest(10.0).requests, 0);
}

TEST(WindowedAggregator, RingSlotIsReusedAcrossWraparound) {
  obs::WindowOptions wo;
  wo.slice_ns = 1'000'000'000;
  wo.num_slices = 4;
  wo.num_stripes = 1;
  wo.window_ns = {1'000'000'000};
  obs::WindowedAggregator agg(wo);

  // Epochs 1 and 5 hash to the same ring slot; the second write must retire
  // the first in place rather than double-count.
  agg.Record(1'200'000'000, 10.0, true, false, false);
  agg.Record(5'200'000'000, 90.0, false, true, false);
  const obs::WindowSnapshot snap = agg.Snapshot(5'200'000'000);
  const obs::WindowStats& w = snap.Closest(1.0);
  EXPECT_EQ(w.requests, 1);
  EXPECT_EQ(w.errors, 0);
  EXPECT_EQ(w.cache_hits, 1);
  EXPECT_NEAR(w.mean_us, 90.0, 1e-9);
}

TEST(WindowedAggregator, SnapshotWriteJsonIsValid) {
  obs::WindowedAggregator agg;
  agg.Record(1'000'000'000, 42.0, false, true, false);
  const obs::WindowSnapshot snap = agg.Snapshot(1'000'000'000);
  obs::JsonWriter w;
  snap.WriteJson(&w);
  const std::string json = w.str();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_TRUE(Contains(json, "\"p99_us\"")) << json;
  EXPECT_TRUE(Contains(json, "\"cache_hit_rate\"")) << json;
}

TEST(WindowedAggregator, RecordNeverAllocatesAfterConstruction) {
  obs::WindowOptions wo;
  wo.num_stripes = 2;
  obs::WindowedAggregator agg(wo);
  // Prime this thread (dense thread id registration happens once).
  agg.Record(0, 1.0, false, false, false);
  const int64_t allocs = CountAllocations([&] {
    for (int i = 0; i < 1000; ++i) {
      // Advancing now_ns across slice boundaries also exercises the
      // in-place stale-slice reset, which must reuse the bucket storage.
      agg.Record(static_cast<int64_t>(i) * 1'000'000,
                 static_cast<double>(i % 500), i % 7 == 0, i % 3 == 0, false);
    }
  });
  EXPECT_EQ(allocs, 0);
}

TEST(WindowedAggregator, ConcurrentRecordAndSnapshotHammer) {
  obs::WindowOptions wo;
  wo.num_stripes = 4;
  obs::WindowedAggregator agg(wo);
  const int64_t now = obs::NowNs();  // fixed: all records share one epoch

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::WindowSnapshot snap = agg.Snapshot(now);
      ASSERT_EQ(snap.windows.size(), 3u);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&agg, now, t] {
      for (int i = 0; i < 2500; ++i) {
        agg.Record(now, static_cast<double>((t * 2500 + i) % 100), i % 11 == 0,
                   i % 2 == 0, false);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(agg.Snapshot(now).Closest(60.0).requests, 10000);
}

// --- FlightRecorder ---------------------------------------------------------

obs::RequestTrace TraceWith(int32_t user, int64_t total_ns) {
  obs::RequestTrace t;
  t.user = user;
  t.n = 5;
  t.total_ns = total_ns;
  return t;
}

TEST(FlightRecorder, RecentRingKeepsNewestOldestFirstAndCountsDrops) {
  obs::FlightRecorderOptions fo;
  fo.recent_capacity = 4;
  fo.slowest_capacity = 2;
  fo.exemplar_bounds_us = {100.0, 1000.0};
  obs::FlightRecorder rec(fo);

  for (int i = 1; i <= 6; ++i) {
    EXPECT_EQ(rec.Record(TraceWith(i, i * 40'000)), i);  // ids are 1-based
  }
  EXPECT_EQ(rec.TotalRecorded(), 6);
  EXPECT_EQ(rec.Dropped(), 2);

  const std::vector<obs::RequestTrace> recent = rec.Recent();
  ASSERT_EQ(recent.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(recent[static_cast<size_t>(i)].id, i + 3);
    EXPECT_EQ(recent[static_cast<size_t>(i)].user, i + 3);
  }

  const std::vector<obs::RequestTrace> slowest = rec.Slowest();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].total_ns, 240'000);
  EXPECT_EQ(slowest[1].total_ns, 200'000);

  // Latencies 40..240us against bounds {100, 1000}: nothing <= 100us is last
  // recorded at 80us (trace 2); the (100, 1000] bucket last saw 240us
  // (trace 6); the overflow bucket never fired.
  const std::vector<obs::Exemplar> ex = rec.Exemplars();
  ASSERT_EQ(ex.size(), 3u);
  EXPECT_EQ(ex[0].trace_id, 2);
  EXPECT_NEAR(ex[0].latency_us, 80.0, 1e-9);
  EXPECT_EQ(ex[1].trace_id, 6);
  EXPECT_NEAR(ex[1].latency_us, 240.0, 1e-9);
  EXPECT_EQ(ex[2].trace_id, 0);
}

TEST(FlightRecorder, LogsRequestsAboveTheSlowThreshold) {
  obs::FlightRecorderOptions fo;
  fo.slow_log_threshold_ns = 100'000;
  obs::FlightRecorder rec(fo);

  LogCapture capture;
  rec.Record(TraceWith(1, 50'000));  // below threshold: silent
  rec.Record(TraceWith(7, 250'000));
  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("slow request: trace_id=2"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("user=7"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("total_us=250"), std::string::npos) << lines[0];
}

TEST(FlightRecorder, WriteJsonIsValid) {
  obs::FlightRecorder rec;
  rec.Record(TraceWith(1, 5'000));
  rec.Record(TraceWith(2, 500'000));
  obs::JsonWriter w;
  rec.WriteJson(&w);
  const std::string json = w.str();
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_TRUE(Contains(json, "\"recent\"")) << json;
  EXPECT_TRUE(Contains(json, "\"slowest\"")) << json;
  EXPECT_TRUE(Contains(json, "\"exemplars\"")) << json;
}

TEST(FlightRecorder, RecordNeverAllocatesAfterConstruction) {
  obs::FlightRecorderOptions fo;
  fo.recent_capacity = 16;
  fo.slowest_capacity = 8;
  obs::FlightRecorder rec(fo);
  rec.Record(TraceWith(0, 1'000));  // prime dense-thread-id registration
  const int64_t allocs = CountAllocations([&] {
    for (int i = 0; i < 500; ++i) {
      rec.Record(TraceWith(i, (i % 97) * 1'000));
    }
  });
  EXPECT_EQ(allocs, 0);
}

TEST(FlightRecorder, ConcurrentRecordHammer) {
  obs::FlightRecorderOptions fo;
  fo.recent_capacity = 32;
  fo.slowest_capacity = 8;
  obs::FlightRecorder rec(fo);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < 500; ++i) {
        rec.Record(TraceWith(t, (t * 500 + i) * 1'000));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(rec.TotalRecorded(), 2000);
  EXPECT_EQ(rec.Dropped(), 2000 - 32);
  const std::vector<obs::RequestTrace> recent = rec.Recent();
  ASSERT_EQ(recent.size(), 32u);
  for (const obs::RequestTrace& t : recent) {
    EXPECT_GT(t.id, 0);
    EXPECT_LE(t.id, 2000);
  }
}

// --- ServeObserver ----------------------------------------------------------

TEST(ServeObserver, DisabledObserverOwnsNothing) {
  obs::ServeObserver observer;
  EXPECT_FALSE(observer.enabled());
  EXPECT_EQ(observer.window(), nullptr);
  EXPECT_EQ(observer.recorder(), nullptr);
  EXPECT_TRUE(observer.StageStats().empty());
  obs::RequestTrace t;
  t.total_ns = 1'000;
  EXPECT_EQ(observer.OnComplete(0, 1.0, false, false, false, &t), 0);
  EXPECT_EQ(observer.window(), nullptr);  // OnComplete allocated nothing
}

TEST(ServeObserver, DisabledRequestPathDoesNotAllocate) {
  // The acceptance contract for sampling-off serving: zero heap allocations
  // per request, and the only observability cost is the single relaxed
  // atomic load inside enabled(). The loop below mirrors the exact
  // instrumentation statements RecommendService::TopNInternal adds to the
  // request path — the enabled() gate, the stack-allocated RequestTrace,
  // the null StageTimers, and the guarded OnComplete — so if any of them
  // ever grows a hidden allocation, this test fails.
  obs::ServeObserver observer;
  ASSERT_FALSE(observer.enabled());
  int64_t sink = 0;
  const int64_t allocs = CountAllocations([&] {
    for (int i = 0; i < 256; ++i) {
      const bool observing = observer.enabled();
      obs::RequestTrace trace;
      obs::RequestTrace* t = observing ? &trace : nullptr;
      { obs::StageTimer timer(t, obs::Stage::kCacheLookup); }
      { obs::StageTimer timer(t, obs::Stage::kCandidates); }
      { obs::StageTimer timer(t, obs::Stage::kScore); }
      { obs::StageTimer timer(t, obs::Stage::kCacheInsert); }
      if (observing) {
        observer.OnComplete(i, 1.0, false, false, false, t);
      }
      sink += trace.user;
    }
  });
  EXPECT_EQ(allocs, 0);
  EXPECT_EQ(sink, -256);  // trace.user default (-1) per iteration
}

TEST(ServeObserver, SamplesEveryNthTicketAndAggregatesStages) {
  obs::ServeObserverOptions so;
  so.enabled = true;
  so.sample_every_n = 2;
  so.window.slice_ns = 1'000'000'000;
  so.window.window_ns = {1'000'000'000};
  obs::ServeObserver observer(so);
  ASSERT_TRUE(observer.enabled());
  ASSERT_NE(observer.window(), nullptr);
  ASSERT_NE(observer.recorder(), nullptr);

  EXPECT_TRUE(observer.SampleTrace());   // ticket 0
  EXPECT_FALSE(observer.SampleTrace());  // ticket 1
  EXPECT_TRUE(observer.SampleTrace());   // ticket 2

  const int64_t now = 5'000'000'000;
  obs::RequestTrace t;
  t.user = 1;
  t.total_ns = 5'000;
  t.stage_ns[static_cast<int>(obs::Stage::kScore)] = 3'000;
  t.stage_ns[static_cast<int>(obs::Stage::kSelect)] = 1'000;
  EXPECT_EQ(observer.OnComplete(now, 5.0, false, true, false, &t), 1);
  // Unsampled request: window-only accounting, no recorder entry.
  EXPECT_EQ(observer.OnComplete(now, 7.0, true, false, false, nullptr), 0);

  const obs::WindowSnapshot snap = observer.window()->Snapshot(now);
  const obs::WindowStats& w = snap.Closest(1.0);
  EXPECT_EQ(w.requests, 2);
  EXPECT_EQ(w.errors, 1);
  EXPECT_EQ(w.cache_hits, 1);
  EXPECT_EQ(observer.recorder()->TotalRecorded(), 1);

  const std::vector<obs::StageStat> stats = observer.StageStats();
  ASSERT_EQ(stats.size(), static_cast<size_t>(obs::kNumStages));
  const obs::StageStat& score =
      stats[static_cast<size_t>(obs::Stage::kScore)];
  EXPECT_STREQ(score.name, "score");
  EXPECT_EQ(score.sampled, 1);
  EXPECT_NEAR(score.total_us, 3.0, 1e-9);
  EXPECT_NEAR(score.mean_us, 3.0, 1e-9);
  EXPECT_EQ(stats[static_cast<size_t>(obs::Stage::kQueue)].sampled, 0);
}

// --- Exposition -------------------------------------------------------------

obs::MetricsSnapshot ExampleMetrics() {
  obs::MetricsSnapshot ms;
  ms.counters["serve.requests"] = 5;
  ms.gauges["serve.qps"] = 12.5;
  obs::MetricsSnapshot::HistogramData h;
  h.bounds = {1.0, 10.0};
  h.buckets = {1, 2, 3};
  h.count = 6;
  h.sum = 40.0;
  ms.histograms["serve.latency_us"] = h;
  return ms;
}

TEST(Exposition, StatuszShowsEverySection) {
  obs::WindowedAggregator agg;
  agg.Record(1'000'000'000, 42.0, false, true, false);
  const obs::WindowSnapshot window = agg.Snapshot(1'000'000'000);
  const obs::MetricsSnapshot metrics = ExampleMetrics();
  obs::FlightRecorder recorder;
  recorder.Record(TraceWith(3, 42'000));
  const std::vector<obs::StageStat> stages = {
      {"score", 1, 3.0, 3.0},
  };

  obs::StatuszData d;
  d.uptime_ns = 2'500'000'000;
  d.metrics = &metrics;
  d.window = &window;
  d.stages = &stages;
  d.recorder = &recorder;
  const std::string page = obs::ExportStatusz(d);
  EXPECT_TRUE(Contains(page, "=== subrec statusz ===")) << page;
  EXPECT_TRUE(Contains(page, "uptime_seconds: 2.500")) << page;
  EXPECT_TRUE(Contains(page, "-- rolling windows --")) << page;
  EXPECT_TRUE(Contains(page, "p99_us")) << page;
  EXPECT_TRUE(Contains(page, "-- stage latency (sampled traces) --")) << page;
  EXPECT_TRUE(Contains(page, "-- flight recorder --")) << page;
  EXPECT_TRUE(Contains(page, "recorded=1 dropped=0")) << page;
  EXPECT_TRUE(Contains(page, "-- counters --")) << page;
  EXPECT_TRUE(Contains(page, "serve.requests")) << page;
}

TEST(Exposition, StatuszBreaksDownCandidateSources) {
  obs::MetricsSnapshot metrics;
  metrics.counters["serve.candidates.source.ann_embedding"] = 3;
  metrics.counters["serve.candidates.source.topic_pruned"] = 1;
  metrics.counters["serve.requests"] = 4;
  obs::StatuszData d;
  d.metrics = &metrics;
  const std::string page = obs::ExportStatusz(d);
  EXPECT_TRUE(Contains(page, "-- candidate sources (scored requests) --"))
      << page;
  EXPECT_TRUE(Contains(page, "ann_embedding")) << page;
  EXPECT_TRUE(Contains(page, "75.00%")) << page;
  EXPECT_TRUE(Contains(page, "25.00%")) << page;

  // Processes that never registered the family get no section at all.
  obs::MetricsSnapshot unrelated;
  unrelated.counters["serve.requests"] = 4;
  obs::StatuszData d2;
  d2.metrics = &unrelated;
  EXPECT_FALSE(Contains(obs::ExportStatusz(d2), "candidate sources"));
}

TEST(Exposition, MetricsJsonIsParseableWithEverySection) {
  obs::WindowedAggregator agg;
  agg.Record(1'000'000'000, 42.0, false, true, false);
  const obs::WindowSnapshot window = agg.Snapshot(1'000'000'000);
  const obs::MetricsSnapshot metrics = ExampleMetrics();
  obs::FlightRecorder recorder;
  recorder.Record(TraceWith(3, 42'000));
  const std::vector<obs::StageStat> stages = {
      {"score", 1, 3.0, 3.0},
  };

  obs::StatuszData d;
  d.metrics = &metrics;
  d.window = &window;
  d.stages = &stages;
  d.recorder = &recorder;
  const std::string json = obs::ExportMetricsJson(d);
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_TRUE(Contains(json, "\"metrics\"")) << json;
  EXPECT_TRUE(Contains(json, "\"windows\"")) << json;
  EXPECT_TRUE(Contains(json, "\"stages\"")) << json;
  EXPECT_TRUE(Contains(json, "\"flight_recorder\"")) << json;

  // Omitted sections keep the document complete and parseable.
  const obs::StatuszData empty;
  const std::string minimal = obs::ExportMetricsJson(empty);
  EXPECT_TRUE(JsonChecker::Valid(minimal)) << minimal;
}

TEST(Exposition, PrometheusEmitsTypedSeriesAndWindowGauges) {
  obs::WindowedAggregator agg;
  agg.Record(1'000'000'000, 42.0, false, true, false);
  const obs::WindowSnapshot window = agg.Snapshot(1'000'000'000);
  const obs::MetricsSnapshot metrics = ExampleMetrics();

  obs::StatuszData d;
  d.metrics = &metrics;
  d.window = &window;
  const std::string text = obs::ExportPrometheus(d);
  // Dotted registry names sanitize to underscores.
  EXPECT_TRUE(Contains(text, "# TYPE serve_requests counter")) << text;
  EXPECT_TRUE(Contains(text, "serve_requests 5")) << text;
  EXPECT_TRUE(Contains(text, "# TYPE serve_qps gauge")) << text;
  EXPECT_TRUE(Contains(text, "# TYPE serve_latency_us histogram")) << text;
  // Buckets are cumulative: 1, then 1+2, then the +Inf total.
  EXPECT_TRUE(Contains(text, "serve_latency_us_bucket{le=\"1\"} 1")) << text;
  EXPECT_TRUE(Contains(text, "serve_latency_us_bucket{le=\"10\"} 3")) << text;
  EXPECT_TRUE(Contains(text, "serve_latency_us_bucket{le=\"+Inf\"} 6"))
      << text;
  EXPECT_TRUE(Contains(text, "serve_latency_us_sum 40")) << text;
  EXPECT_TRUE(Contains(text, "serve_latency_us_count 6")) << text;
  EXPECT_TRUE(Contains(text, "subrec_window_p99_us{window=\"1s\"}")) << text;
  EXPECT_TRUE(Contains(text, "subrec_window_qps{window=\"60s\"}")) << text;
}

// --- RecommendService integration -------------------------------------------

/// The handcrafted 4-paper, 2-user snapshot from serve_test: papers 2 and 3
/// are post-split (servable), user 0's topic-pruned pool is exactly paper 2.
serve::SnapshotData TinyServingData() {
  serve::SnapshotData d;
  d.model_name = "NPRec";
  d.dataset = "tiny";
  d.split_year = 2014;
  d.interest = {{1.0, 0.0}, {0.5, 0.5}, {0.0, 1.0}, {0.25, -0.75}};
  d.influence = {{0.2, 0.1}, {-0.5, 1.0}, {1.0, 1.0}, {0.0, 0.0}};
  d.text = {{0.1}, {0.2}, {0.3}, {0.4}};
  d.years = {2012, 2013, 2015, 2016};
  d.disciplines = {0, 1, 0, 1};
  d.topics = {0, 1, 0, 1};
  d.profiles = {{0}, {1, 0}};
  return d;
}

/// A deterministic synthetic snapshot big enough that per-row transients
/// (the failure mode these probes guard) would dominate any fixed
/// per-section overhead.
serve::SnapshotData SyntheticServingData(size_t papers, size_t dim) {
  serve::SnapshotData d;
  d.model_name = "NPRec";
  d.dataset = "synthetic";
  d.split_year = 2014;
  d.interest.ResizeOverwrite(papers, dim);
  d.influence.ResizeOverwrite(papers, dim);
  for (size_t p = 0; p < papers; ++p) {
    for (size_t j = 0; j < dim; ++j) {
      d.interest(p, j) =
          static_cast<double>((p * 31 + j * 7) % 13) / 13.0 - 0.5;
      d.influence(p, j) =
          static_cast<double>((p * 17 + j * 11) % 19) / 19.0 - 0.5;
    }
  }
  d.years.assign(papers, 2015);
  d.disciplines.assign(papers, 0);
  d.topics.assign(papers, 0);
  d.profiles = {{0, 1, 2}, {3, 4}};
  return d;
}

TEST(ScorerAllocation, SteadyStateScoringLoopIsAllocationFree) {
  // The batched-engine acceptance contract: once per-thread scratch and
  // the output containers are warm, scoring + selection allocate NOTHING,
  // in either engine mode, with or without stage stats. Growth of any
  // hidden temporary (a per-tile vector, a per-call string, a rehash)
  // fails this test.
  const serve::FrozenScorer scorer(SyntheticServingData(512, 24));
  const std::vector<int32_t> profile = {3, 5, 7, 11, 13, 17, 19};
  std::vector<int32_t> candidates(512);
  for (size_t i = 0; i < candidates.size(); ++i)
    candidates[i] = static_cast<int32_t>(i);

  std::vector<serve::ScoredPaper> out;
  std::vector<double> scores;
  serve::ScoreBatchStats stats;
  const std::vector<int32_t> profile2 = {2, 4, 6};
  std::vector<std::vector<double>> stacked_scores(2);
  std::vector<serve::FrozenScorer::StackedRequest> stacked = {
      {&profile, &stacked_scores[0]}, {&profile2, &stacked_scores[1]}};

  // Warm-up: primes scratch, counter-registry statics, and capacities.
  for (const auto mode :
       {serve::ScorerMode::kGemm, serve::ScorerMode::kPairwise}) {
    scorer.TopNInto(profile, candidates, 10, mode, nullptr, nullptr, &out);
  }
  scorer.ScoreBatchInto(profile, candidates, &scores, &stats);
  scorer.ScoreStackedInto(stacked, candidates, &stats);

  const int64_t allocs = CountAllocations([&] {
    for (int i = 0; i < 16; ++i) {
      scorer.TopNInto(profile, candidates, 10, serve::ScorerMode::kGemm,
                      nullptr, nullptr, &out);
      scorer.TopNInto(profile, candidates, 10, serve::ScorerMode::kPairwise,
                      nullptr, nullptr, &out);
      scorer.ScoreBatchInto(profile, candidates, &scores, &stats);
      scorer.ScoreStackedInto(stacked, candidates, &stats);
    }
  });
  EXPECT_EQ(allocs, 0);
  ASSERT_EQ(out.size(), 10u);
}

TEST(AnnAllocation, SteadyStateHnswSearchIsAllocationFree) {
  // The kAnnEmbedding retrieval path is one HnswIndex::Search per user
  // query, so this is the graph-walk analogue of the scoring-loop probe
  // above: after one warm call per thread the search scratch (visited
  // stamps, frontier/best heaps, the SIMD distance batches) lives in the
  // thread-local pool and `out` keeps its capacity — a loop of queries
  // must allocate NOTHING. A per-search scratch allocation, a heap that
  // re-grows, or a transient in the batch kernel fails this test.
  constexpr size_t kPapers = 512;
  constexpr size_t kDim = 24;
  std::vector<int32_t> ids(kPapers);
  std::vector<double> vectors(kPapers * kDim);
  for (size_t p = 0; p < kPapers; ++p) {
    ids[p] = static_cast<int32_t>(p);
    for (size_t j = 0; j < kDim; ++j)
      vectors[p * kDim + j] =
          static_cast<double>((p * 31 + j * 7) % 13) / 13.0 - 0.5;
  }
  auto built = ann::HnswIndex::Build(std::move(ids), std::move(vectors), kDim,
                                     ann::HnswOptions{});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto& index = built.value();

  std::vector<double> query(kDim);
  std::vector<ann::Neighbor> out;
  ann::SearchStats stats;
  const auto fill_query = [&](int i) {
    for (size_t j = 0; j < kDim; ++j)
      query[j] = static_cast<double>((static_cast<size_t>(i) * 17 + j) % 11) /
                     11.0 -
                 0.5;
  };

  // Warm-up: primes the thread-local scratch pool and out's capacity.
  fill_query(0);
  ASSERT_TRUE(index->Search(query, 10, 128, &out, &stats).ok());

  const int64_t allocs = CountAllocations([&] {
    for (int i = 0; i < 16; ++i) {
      fill_query(i);
      ASSERT_TRUE(index->Search(query, 10, 128, &out, &stats).ok());
      ASSERT_TRUE(index->Search(query, 10, 128, &out, nullptr).ok());
    }
  });
  EXPECT_EQ(allocs, 0);
  ASSERT_EQ(out.size(), 10u);
}

TEST(SnapshotAllocation, DecodeAllocatesPerSectionNotPerRow) {
  // The slab decode contract: parsing a snapshot performs a bounded,
  // shape-independent number of allocations (one slab per matrix plus
  // per-section bookkeeping), and never transiently doubles the big
  // slabs. The pre-slab decoder allocated one vector per row — with
  // 4096 rows this bound would blow up by two orders of magnitude.
  const serve::SnapshotData big = SyntheticServingData(4096, 8);
  const serve::SnapshotWriter writer(big);
  const std::string& bytes = writer.bytes();

  serve::SnapshotData parsed;
  int64_t alloc_bytes = 0;
  const int64_t allocs = CountAllocations([&] {
    alloc_bytes = CountAllocatedBytes([&] {
      auto result = serve::SnapshotReader::Parse(bytes);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      parsed = std::move(result).value();
    });
  });
  EXPECT_LE(allocs, 64) << "snapshot decode is allocating per row again";
  // Every byte allocated during the parse must be accounted for by the
  // decoded payload itself (slabs + attribute arrays), not transient
  // copies: allow the payload once plus 64 KiB of fixed overhead.
  EXPECT_LE(alloc_bytes, static_cast<int64_t>(bytes.size()) + 64 * 1024);
  ASSERT_EQ(parsed.interest.rows(), 4096u);
  ASSERT_EQ(parsed.interest.cols(), 8u);
}

TEST(ServiceObservability, GemmTracesCarryScoreStageBreakdown) {
  serve::ServeOptions so;
  so.num_threads = 1;
  so.cache_capacity = 0;
  so.scorer_mode = serve::ScorerMode::kGemm;
  so.observer.enabled = true;
  so.observer.sample_every_n = 1;
  so.observer.recorder.recent_capacity = 4;
  serve::RecommendService service(so);
  auto state = serve::ServingState::FromSnapshot(TinyServingData(), so.index);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  service.Swap(std::move(state).value());

  const auto counters_before =
      obs::MetricsRegistry::Global().Snapshot().counters;
  auto value_of = [](const std::map<std::string, int64_t>& counters,
                     const std::string& name) {
    const auto it = counters.find(name);
    return it == counters.end() ? int64_t{0} : it->second;
  };

  const serve::RecResponse r = service.TopN(1, 3);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();

  const auto counters_after =
      obs::MetricsRegistry::Global().Snapshot().counters;
  EXPECT_EQ(value_of(counters_after, "serve.score.requests.gemm"),
            value_of(counters_before, "serve.score.requests.gemm") + 1);
  EXPECT_EQ(value_of(counters_after, "serve.score.requests.pairwise"),
            value_of(counters_before, "serve.score.requests.pairwise"));

  // The sampled trace splits the score stage into gather/gemm/epilogue;
  // the breakdown can never exceed the enclosing score stage.
  const std::vector<obs::RequestTrace> recent =
      service.observer().recorder()->Recent();
  ASSERT_FALSE(recent.empty());
  const obs::RequestTrace& t = recent[0];
  const int64_t score = t.stage_ns[static_cast<int>(obs::Stage::kScore)];
  const int64_t sub =
      t.stage_ns[static_cast<int>(obs::Stage::kScoreGather)] +
      t.stage_ns[static_cast<int>(obs::Stage::kScoreGemm)] +
      t.stage_ns[static_cast<int>(obs::Stage::kScoreEpilogue)];
  EXPECT_GT(score, 0);
  EXPECT_GE(sub, 0);
  EXPECT_LE(sub, score);
}

TEST(ServiceObservability, DisabledByDefaultAndInert) {
  serve::ServeOptions so;
  so.num_threads = 1;
  serve::RecommendService service(so);
  auto state = serve::ServingState::FromSnapshot(TinyServingData(), so.index);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  service.Swap(std::move(state).value());

  for (int i = 0; i < 8; ++i) service.TopN(0, 5);
  EXPECT_FALSE(service.observer().enabled());
  EXPECT_EQ(service.observer().window(), nullptr);
  EXPECT_EQ(service.observer().recorder(), nullptr);
  EXPECT_TRUE(service.observer().StageStats().empty());
}

TEST(ServiceObservability, RequestsLandInWindowsStagesAndRecorder) {
  serve::ServeOptions so;
  so.num_threads = 2;
  so.batch_size = 2;
  so.observer.enabled = true;
  so.observer.sample_every_n = 1;  // trace every request
  so.observer.recorder.recent_capacity = 16;
  serve::RecommendService service(so);
  auto state = serve::ServingState::FromSnapshot(TinyServingData(), so.index);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  service.Swap(std::move(state).value());

  const serve::RecResponse miss = service.TopN(0, 5);
  ASSERT_TRUE(miss.status.ok()) << miss.status.ToString();
  EXPECT_FALSE(miss.cache_hit);
  ASSERT_FALSE(miss.items.empty());
  const serve::RecResponse hit = service.TopN(0, 5);
  EXPECT_TRUE(hit.cache_hit);
  const serve::RecResponse bad = service.TopN(42, 5);
  EXPECT_FALSE(bad.status.ok());
  const std::vector<serve::RecResponse> batch =
      service.TopNBatch({{1, 3}, {0, 5}});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].status.ok()) << batch[0].status.ToString();
  EXPECT_TRUE(batch[1].cache_hit);

  const obs::ServeObserver& observer = service.observer();
  ASSERT_TRUE(observer.enabled());
  ASSERT_NE(observer.window(), nullptr);
  const obs::WindowSnapshot live = observer.window()->Snapshot(obs::NowNs());
  const obs::WindowStats& w = live.Closest(60.0);
  EXPECT_EQ(w.requests, 5);
  EXPECT_EQ(w.errors, 1);
  EXPECT_EQ(w.cache_hits, 2);
  EXPECT_NEAR(w.error_rate, 0.2, 1e-12);
  EXPECT_NEAR(w.cache_hit_rate, 0.4, 1e-12);

  ASSERT_NE(observer.recorder(), nullptr);
  EXPECT_EQ(observer.recorder()->TotalRecorded(), 5);
  const std::vector<obs::RequestTrace> recent = observer.recorder()->Recent();
  ASSERT_EQ(recent.size(), 5u);
  // Trace 1: user 0 cache miss, scored from the topic-pruned pool.
  EXPECT_EQ(recent[0].user, 0);
  EXPECT_FALSE(recent[0].cache_hit);
  EXPECT_FALSE(recent[0].error);
  EXPECT_EQ(recent[0].generation, 1u);
  EXPECT_GE(recent[0].candidate_count, 1);
  ASSERT_NE(recent[0].candidate_source, nullptr);
  EXPECT_STREQ(recent[0].candidate_source, "topic_pruned");
  EXPECT_GT(recent[0].result_count, 0);
  // Trace 2: the cache hit never reaches the scoring stage.
  EXPECT_TRUE(recent[1].cache_hit);
  EXPECT_EQ(recent[1].stage_ns[static_cast<int>(obs::Stage::kScore)], 0);
  // Trace 3: the unknown user is recorded as an error with no candidates.
  EXPECT_TRUE(recent[2].error);
  EXPECT_EQ(recent[2].user, 42);
  EXPECT_EQ(recent[2].candidate_source, nullptr);
  EXPECT_EQ(recent[2].result_count, 0);
  // Traces 4-5 came through SubmitBatch, so queue time is attributed.
  EXPECT_EQ(recent[3].user, 1);
  EXPECT_GE(recent[3].stage_ns[static_cast<int>(obs::Stage::kQueue)], 0);
  EXPECT_GE(recent[3].total_ns,
            recent[3].stage_ns[static_cast<int>(obs::Stage::kQueue)]);

  const std::vector<obs::StageStat> stages = observer.StageStats();
  ASSERT_EQ(stages.size(), static_cast<size_t>(obs::kNumStages));
  EXPECT_STREQ(stages[0].name, "queue");
  EXPECT_STREQ(stages[1].name, "cache_lookup");
  EXPECT_STREQ(stages[2].name, "candidates");
  EXPECT_STREQ(stages[3].name, "score");
  EXPECT_STREQ(stages[4].name, "select");
  EXPECT_STREQ(stages[5].name, "cache_insert");
  // Only the three non-hit, non-error requests could reach scoring.
  EXPECT_LE(stages[3].sampled, 3);
  EXPECT_GE(stages[3].total_us, 0.0);

  // The live service state exports cleanly in every format.
  const obs::WindowSnapshot window = observer.window()->Snapshot(obs::NowNs());
  obs::StatuszData d;
  d.window = &window;
  d.stages = &stages;
  d.recorder = observer.recorder();
  const std::string page = obs::ExportStatusz(d);
  EXPECT_TRUE(Contains(page, "slowest:")) << page;
  EXPECT_TRUE(Contains(page, "topic_pruned")) << page;
  const std::string json = obs::ExportMetricsJson(d);
  EXPECT_TRUE(JsonChecker::Valid(json)) << json;
}

TEST(ServiceObservability, ConcurrentBatchesSwapAndExportHammer) {
  serve::ServeOptions so;
  so.num_threads = 4;
  so.batch_size = 4;
  so.observer.enabled = true;
  so.observer.sample_every_n = 3;
  so.observer.recorder.recent_capacity = 32;
  serve::RecommendService service(so);
  auto state = serve::ServingState::FromSnapshot(TinyServingData(), so.index);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  service.Swap(std::move(state).value());

  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::WindowSnapshot snap =
          service.observer().window()->Snapshot(obs::NowNs());
      const std::vector<obs::StageStat> stages =
          service.observer().StageStats();
      obs::StatuszData d;
      d.window = &snap;
      d.stages = &stages;
      d.recorder = service.observer().recorder();
      const std::string page = obs::ExportStatusz(d);
      ASSERT_FALSE(page.empty());
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&service] {
      for (int b = 0; b < 4; ++b) {
        std::vector<serve::RecRequest> requests;
        for (int i = 0; i < 16; ++i) {
          requests.push_back(serve::RecRequest{i % 2, 4});
        }
        const std::vector<serve::RecResponse> responses =
            service.TopNBatch(requests);
        for (const serve::RecResponse& r : responses) {
          EXPECT_TRUE(r.status.ok()) << r.status.ToString();
        }
      }
    });
  }
  // Hot reload while batches are in flight: in-flight requests finish on the
  // old generation and are still counted exactly once.
  auto state2 = serve::ServingState::FromSnapshot(TinyServingData(), so.index);
  ASSERT_TRUE(state2.ok()) << state2.status().ToString();
  service.Swap(std::move(state2).value());
  for (std::thread& t : submitters) t.join();
  stop.store(true, std::memory_order_relaxed);
  exporter.join();

  const obs::WindowSnapshot final_snap =
      service.observer().window()->Snapshot(obs::NowNs());
  const obs::WindowStats& w = final_snap.Closest(60.0);
  EXPECT_EQ(w.requests, 128);  // 2 threads x 4 batches x 16 requests
  EXPECT_EQ(w.errors, 0);
  // Every request draws one sampling ticket; every third is traced.
  EXPECT_EQ(service.observer().recorder()->TotalRecorded(), 43);
}

}  // namespace
}  // namespace subrec
