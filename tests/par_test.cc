#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "par/parallel.h"
#include "par/thread_pool.h"
#include "serve/thread_pool.h"

namespace subrec::par {
namespace {

// The serve pool is a thin alias of the shared runtime's pool (PR kept the
// explicit-shutdown destruction-order semantics of RecommendService).
static_assert(std::is_same_v<serve::ThreadPool, par::ThreadPool>,
              "serve::ThreadPool must alias par::ThreadPool");

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ScopedNumThreads scoped(threads);
    std::vector<int> hits(1237, 0);
    ParallelFor(hits.size(), 64, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) ++hits[i];
    });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }))
        << "threads=" << threads;
  }
}

TEST(ParallelFor, ZeroLengthRangeNeverCallsBody) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ScopedNumThreads scoped(threads);
    bool called = false;
    ParallelFor(0, 16, [&](size_t, size_t) { called = true; });
    EXPECT_FALSE(called);
  }
}

TEST(ParallelFor, ZeroGrainBehavesAsGrainOne) {
  ScopedNumThreads scoped(2);
  std::vector<int> hits(17, 0);
  ParallelFor(hits.size(), 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ChunkBoundariesIndependentOfThreadCount) {
  const auto chunks_at = [](size_t threads) {
    ScopedNumThreads scoped(threads);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    ParallelFor(1000, 96, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = chunks_at(1);
  EXPECT_EQ(serial, chunks_at(2));
  EXPECT_EQ(serial, chunks_at(4));
  // The grid itself is [c*grain, min(n, (c+1)*grain)).
  ASSERT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial.front(), (std::pair<size_t, size_t>{0, 96}));
  EXPECT_EQ(serial.back(), (std::pair<size_t, size_t>{960, 1000}));
}

TEST(ParallelFor, NestedRegionsRunInline) {
  ScopedNumThreads scoped(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int> inner_total{0};
  ParallelFor(8, 1, [&](size_t begin, size_t end) {
    EXPECT_TRUE(InParallelRegion());
    for (size_t i = begin; i < end; ++i) {
      // Must not deadlock waiting for pool threads already busy with the
      // outer region; nested calls execute inline on this thread.
      ParallelFor(4, 1, [&](size_t b, size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  for (size_t threads : {size_t{1}, size_t{4}}) {
    ScopedNumThreads scoped(threads);
    EXPECT_THROW(
        ParallelFor(100, 10,
                    [&](size_t begin, size_t) {
                      if (begin == 50) throw std::runtime_error("chunk 5");
                    }),
        std::runtime_error);
    // The runtime must be reusable after an aborted region.
    std::atomic<int> total{0};
    ParallelFor(100, 10, [&](size_t begin, size_t end) {
      total.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(total.load(), 100);
  }
}

TEST(ParallelFor, LowestChunkExceptionWinsWhenSerial) {
  ScopedNumThreads scoped(1);
  try {
    ParallelFor(100, 10, [&](size_t begin, size_t) {
      if (begin == 20) throw std::runtime_error("chunk 2");
      if (begin == 70) throw std::runtime_error("chunk 7");
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 2");
  }
}

TEST(ParallelReduce, MatchesSerialSumBitExactly) {
  std::vector<double> values(10007);
  for (size_t i = 0; i < values.size(); ++i)
    values[i] = 1.0 / static_cast<double>(i + 3);
  const auto sum_at = [&](size_t threads) {
    ScopedNumThreads scoped(threads);
    return ParallelReduce(
        values.size(), 128, 0.0,
        [&](size_t begin, size_t end) {
          double s = 0.0;
          for (size_t i = begin; i < end; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = sum_at(1);
  // Identical chunk grid + ascending-chunk combine order: bit-exact.
  EXPECT_EQ(serial, sum_at(2));
  EXPECT_EQ(serial, sum_at(4));
}

TEST(ParallelReduce, ZeroLengthReturnsInit) {
  ScopedNumThreads scoped(4);
  const double r = ParallelReduce(
      0, 8, 42.0, [](size_t, size_t) { return 0.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(r, 42.0);
}

TEST(Runtime, SetNumThreadsReturnsPreviousOverride) {
  const size_t prev = SetNumThreads(3);
  EXPECT_EQ(SetNumThreads(5), 3u);
  EXPECT_EQ(NumThreads(), 5u);
  SetNumThreads(prev);
}

TEST(Runtime, ScopedNumThreadsRestores) {
  const size_t before = NumThreads();
  {
    ScopedNumThreads scoped(2);
    EXPECT_EQ(NumThreads(), 2u);
    {
      ScopedNumThreads inner(4);
      EXPECT_EQ(NumThreads(), 4u);
    }
    EXPECT_EQ(NumThreads(), 2u);
  }
  EXPECT_EQ(NumThreads(), before);
}

TEST(Runtime, HardwareThreadsIsPositive) {
  EXPECT_GE(HardwareThreads(), 1u);
  EXPECT_GE(NumThreads(), 1u);
}

// TSan hammer: several external threads drive parallel regions against the
// shared pool at once, interleaved with thread-count changes from region
// boundaries. Run under the tsan preset this must be race-free.
TEST(Runtime, ConcurrentRegionsFromManyThreads) {
  ScopedNumThreads scoped(4);
  constexpr int kDrivers = 4;
  constexpr int kRounds = 25;
  std::atomic<long> grand_total{0};
  std::vector<std::thread> drivers;
  drivers.reserve(kDrivers);
  for (int t = 0; t < kDrivers; ++t) {
    drivers.emplace_back([&grand_total] {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<long> local{0};
        ParallelFor(257, 16, [&](size_t begin, size_t end) {
          long s = 0;
          for (size_t i = begin; i < end; ++i)
            s += static_cast<long>(i);
          local.fetch_add(s);
        });
        grand_total.fetch_add(local.load());
      }
    });
  }
  for (std::thread& d : drivers) d.join();
  const long expected =
      static_cast<long>(kDrivers) * kRounds * (257L * 256L / 2L);
  EXPECT_EQ(grand_total.load(), expected);
}

TEST(ThreadPoolAlias, SubmitAndShutdownDrains) {
  par::ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 64);
}

}  // namespace
}  // namespace subrec::par
