// Death tests for the SUBREC_CHECK* / SUBREC_DCHECK* macros: failure
// messages must carry both operand values, NEAR must respect the tolerance,
// and DCHECKs must vanish (condition unevaluated) in NDEBUG builds.
#include <cmath>
#include <string>

#include "common/check.h"
#include "gtest/gtest.h"
#include "la/matrix.h"

namespace {

TEST(CheckDeathTest, CheckFailsWithExpressionAndContext) {
  EXPECT_DEATH(SUBREC_CHECK(1 == 2) << "extra context", "1 == 2.*extra context");
}

TEST(CheckDeathTest, BinaryChecksPrintBothOperandValues) {
  const int a = 3;
  const int b = 7;
  EXPECT_DEATH(SUBREC_CHECK_EQ(a, b), "a == b \\(3 vs 7\\)");
  EXPECT_DEATH(SUBREC_CHECK_GT(a, b), "a > b \\(3 vs 7\\)");
  const std::string s = "left";
  const std::string t = "right";
  EXPECT_DEATH(SUBREC_CHECK_EQ(s, t), "left vs right");
}

TEST(CheckDeathTest, BinaryChecksSupportStreamedContext) {
  const size_t n = 2;
  EXPECT_DEATH(SUBREC_CHECK_LT(5u, n) << "idx out of range",
               "\\(5 vs 2\\).*idx out of range");
}

TEST(CheckTest, PassingChecksEvaluateOperandsOnce) {
  int evals = 0;
  auto bump = [&evals] { return ++evals; };
  SUBREC_CHECK_GE(bump(), 1);
  EXPECT_EQ(evals, 1);
  SUBREC_CHECK_NE(bump(), 0);
  EXPECT_EQ(evals, 2);
}

TEST(CheckTest, CheckNearAcceptsWithinTolerance) {
  SUBREC_CHECK_NEAR(1.0, 1.0 + 1e-9, 1e-6);
  SUBREC_CHECK_NEAR(-2.5, -2.5, 0.0);
}

TEST(CheckDeathTest, CheckNearRejectsBeyondToleranceAndNan) {
  EXPECT_DEATH(SUBREC_CHECK_NEAR(1.0, 1.5, 1e-3), "1 vs 1.5, tol 0.001");
  const double nan = std::nan("");
  EXPECT_DEATH(SUBREC_CHECK_NEAR(nan, 0.0, 1.0), "nan vs 0");
}

#if SUBREC_DCHECK_IS_ON
TEST(CheckDeathTest, DchecksFireInDebugBuilds) {
  EXPECT_DEATH(SUBREC_DCHECK(false) << "dbg", "false.*dbg");
  EXPECT_DEATH(SUBREC_DCHECK_EQ(1, 2), "\\(1 vs 2\\)");
}

TEST(MatrixBoundsDeathTest, FlatIndexAndRowDataAreChecked) {
  subrec::la::Matrix m(2, 3);
  EXPECT_DEATH((void)m[6], "i < ");
  EXPECT_DEATH((void)m.row_data(2), "r < ");
  const subrec::la::Matrix& cm = m;
  EXPECT_DEATH((void)cm[100], "i < ");
}
#else
TEST(CheckTest, DchecksCompileOutWithoutEvaluatingOperands) {
  int evals = 0;
  auto bump = [&evals] { return ++evals; };
  SUBREC_DCHECK(bump() < 0) << "never printed";
  SUBREC_DCHECK_EQ(bump(), -1);
  SUBREC_DCHECK_LT(bump(), -1);
  EXPECT_EQ(evals, 0);
}

TEST(MatrixBoundsTest, ReleaseBuildsKeepFlatAccessRaw) {
  // In NDEBUG builds operator[] must stay unchecked; valid accesses only.
  subrec::la::Matrix m(2, 3);
  m[5] = 4.5;
  EXPECT_EQ(m[5], 4.5);
  EXPECT_EQ(m.row_data(1)[2], 4.5);
}
#endif  // SUBREC_DCHECK_IS_ON

TEST(MatrixBoundsTest, ValidAccessUnaffected) {
  subrec::la::Matrix m(2, 2);
  m[3] = 1.5;
  EXPECT_EQ(m.row_data(1)[1], 1.5);
  EXPECT_EQ(m(1, 1), 1.5);
}

}  // namespace
