#include <gtest/gtest.h>

#include <cmath>

#include "la/ops.h"
#include "text/doc2vec.h"
#include "text/hashed_ngram_encoder.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "text/word2vec.h"

namespace subrec::text {
namespace {

TEST(Tokenizer, LowercasesAndSplits) {
  auto toks = Tokenize("Hello, World! GCN-based models");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0], "hello");
  EXPECT_EQ(toks[1], "world");
  EXPECT_EQ(toks[2], "gcn");
  EXPECT_EQ(toks[3], "based");
  EXPECT_EQ(toks[4], "models");
}

TEST(Tokenizer, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... !!! ---").empty());
}

TEST(Tokenizer, StopwordFiltering) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("with"));
  EXPECT_FALSE(IsStopword("graph"));
  auto toks = TokenizeNoStopwords("the graph of the model");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0], "graph");
  EXPECT_EQ(toks[1], "model");
}

TEST(Tokenizer, SplitSentences) {
  auto s = SplitSentences("First one. Second!  Third? trailing");
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], "First one");
  EXPECT_EQ(s[1], "Second");
  EXPECT_EQ(s[2], "Third");
  EXPECT_EQ(s[3], "trailing");
}

TEST(Vocabulary, AddLookupCount) {
  Vocabulary v;
  const int a = v.Add("alpha");
  v.Add("alpha");
  const int b = v.Add("beta");
  EXPECT_EQ(v.Lookup("alpha"), a);
  EXPECT_EQ(v.Lookup("beta"), b);
  EXPECT_EQ(v.Lookup("gamma"), Vocabulary::kUnknown);
  EXPECT_EQ(v.CountOf(a), 2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.total_count(), 3);
}

TEST(Vocabulary, PruneReindexes) {
  Vocabulary v;
  v.Add("rare");
  for (int i = 0; i < 5; ++i) v.Add("common");
  v.Prune(2);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.Lookup("rare"), Vocabulary::kUnknown);
  EXPECT_EQ(v.WordOf(v.Lookup("common")), "common");
}

TEST(HashedEncoder, DeterministicUnitNorm) {
  HashedNgramEncoder enc;
  auto a = enc.Encode("graph neural networks for recommendation");
  auto b = enc.Encode("graph neural networks for recommendation");
  EXPECT_EQ(a, b);
  EXPECT_NEAR(la::Norm2(a), 1.0, 1e-9);
  EXPECT_EQ(a.size(), enc.dim());
}

TEST(HashedEncoder, SimilarSentencesCloserThanDissimilar) {
  HashedNgramEncoder enc;
  auto a = enc.Encode("graph neural networks learn node embeddings");
  auto b = enc.Encode("graph neural networks learn entity embeddings");
  auto c = enc.Encode("randomized clinical trials measure patient outcomes");
  EXPECT_GT(la::CosineSimilarity(a, b), la::CosineSimilarity(a, c));
}

TEST(HashedEncoder, EmptySentenceIsZeroVector) {
  HashedNgramEncoder enc;
  auto v = enc.Encode("");
  EXPECT_NEAR(la::Norm2(v), 0.0, 1e-12);
}

TEST(HashedEncoder, SeedDecorrelates) {
  HashedNgramEncoderOptions o1, o2;
  o2.seed = o1.seed + 1;
  HashedNgramEncoder e1(o1), e2(o2);
  auto a = e1.Encode("subspace embeddings of papers");
  auto b = e2.Encode("subspace embeddings of papers");
  EXPECT_NE(a, b);
}

TEST(TfIdf, FitTransformBasics) {
  TfIdfVectorizer tfidf;
  ASSERT_TRUE(tfidf.Fit({{"a", "b"}, {"a", "c"}, {"a", "d"}}).ok());
  EXPECT_EQ(tfidf.vocabulary_size(), 4u);
  auto v = tfidf.Transform({"a", "b", "zzz"});
  EXPECT_EQ(v.size(), 4u);
  EXPECT_NEAR(la::Norm2(v), 1.0, 1e-9);
  // "b" is rarer than "a", so it gets more weight.
  EXPECT_GT(v[static_cast<size_t>(tfidf.IndexOf("b"))],
            v[static_cast<size_t>(tfidf.IndexOf("a"))]);
}

TEST(TfIdf, EmptyCorpusFails) {
  TfIdfVectorizer tfidf;
  EXPECT_FALSE(tfidf.Fit({}).ok());
}

std::vector<std::vector<std::string>> TwoTopicCorpus() {
  // Words co-occur within topic; cross-topic co-occurrence never happens.
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 120; ++i) {
    corpus.push_back({"graph", "network", "embedding", "node", "edge"});
    corpus.push_back({"patient", "clinical", "trial", "dose", "drug"});
  }
  return corpus;
}

TEST(Word2Vec, SameTopicWordsCloser) {
  Word2VecOptions options;
  options.dim = 24;
  options.epochs = 4;
  Word2Vec w2v(options);
  ASSERT_TRUE(w2v.Train(TwoTopicCorpus()).ok());
  const auto graph = w2v.Embedding("graph");
  const auto node = w2v.Embedding("node");
  const auto drug = w2v.Embedding("drug");
  EXPECT_GT(la::CosineSimilarity(graph, node),
            la::CosineSimilarity(graph, drug) + 0.2);
}

TEST(Word2Vec, UnknownWordIsZero) {
  Word2Vec w2v;
  ASSERT_TRUE(w2v.Train({{"a", "b", "c", "d"}}).ok());
  EXPECT_NEAR(la::Norm2(w2v.Embedding("zzz")), 0.0, 1e-12);
}

TEST(Word2Vec, MeanEmbeddingAveragesKnownTokens) {
  Word2Vec w2v;
  ASSERT_TRUE(w2v.Train({{"a", "b", "a", "b"}, {"a", "b"}}).ok());
  auto mean = w2v.MeanEmbedding({"a", "b", "zzz"});
  auto a = w2v.Embedding("a");
  auto b = w2v.Embedding("b");
  for (size_t i = 0; i < mean.size(); ++i)
    EXPECT_NEAR(mean[i], (a[i] + b[i]) / 2.0, 1e-12);
}

TEST(Word2Vec, EmptyCorpusFails) {
  Word2Vec w2v;
  EXPECT_FALSE(w2v.Train({}).ok());
}

TEST(Doc2Vec, SameTopicDocsCloser) {
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 40; ++i) {
    docs.push_back({"graph", "network", "embedding", "node"});
    docs.push_back({"patient", "clinical", "trial", "dose"});
  }
  Doc2VecOptions options;
  options.dim = 16;
  options.epochs = 12;
  Doc2Vec d2v(options);
  ASSERT_TRUE(d2v.Train(docs).ok());
  ASSERT_EQ(d2v.num_documents(), docs.size());
  // doc 0 and 2 share a topic; doc 0 and 1 do not.
  const auto d0 = d2v.DocumentVector(0);
  EXPECT_GT(la::CosineSimilarity(d0, d2v.DocumentVector(2)),
            la::CosineSimilarity(d0, d2v.DocumentVector(1)));
}

}  // namespace
}  // namespace subrec::text
