#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "eval/ranking.h"
#include "eval/regression.h"

namespace subrec::eval {
namespace {

TEST(Pearson, PerfectLinear) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputsGiveZero) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

TEST(RankWithTies, AverageRanks) {
  // values 10, 20, 20, 30 -> ranks 1, 2.5, 2.5, 4
  auto ranks = RankWithTies({10, 20, 20, 30});
  EXPECT_EQ(ranks[0], 1.0);
  EXPECT_EQ(ranks[1], 2.5);
  EXPECT_EQ(ranks[2], 2.5);
  EXPECT_EQ(ranks[3], 4.0);
}

TEST(Spearman, MonotonicNonlinearIsPerfect) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};  // x^3: nonlinear, monotonic
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(Spearman, KnownValue) {
  // Classic small example.
  std::vector<double> a = {86, 97, 99, 100, 101, 103, 106, 110, 112, 113};
  std::vector<double> b = {2, 20, 28, 27, 50, 29, 7, 17, 6, 12};
  EXPECT_NEAR(SpearmanCorrelation(a, b), -0.1757575, 1e-5);
}

TEST(Kendall, SimpleCases) {
  EXPECT_NEAR(KendallTau({1, 2, 3}, {1, 2, 3}), 1.0, 1e-12);
  EXPECT_NEAR(KendallTau({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
}

TEST(Ndcg, PerfectRankingIsOne) {
  std::vector<bool> rel = {true, true, false, false};
  EXPECT_NEAR(NdcgAtK(rel, 4), 1.0, 1e-12);
}

TEST(Ndcg, HandComputedValue) {
  // One relevant item at position 3 (0-based 2), one relevant total... use
  // rel=5: DCG = 5/log2(4) = 2.5; IDCG = 5/log2(2) = 5 -> 0.5.
  std::vector<bool> rel = {false, false, true};
  EXPECT_NEAR(NdcgAtK(rel, 3), 0.5, 1e-12);
}

TEST(Ndcg, TruncatesAtK) {
  std::vector<bool> rel = {false, false, true};
  EXPECT_EQ(NdcgAtK(rel, 2), 0.0);
}

TEST(Ndcg, NoRelevantGivesZero) {
  EXPECT_EQ(NdcgAtK({false, false}, 2), 0.0);
}

TEST(Mrr, FirstRelevantPosition) {
  EXPECT_NEAR(ReciprocalRank({false, true, true}, 10), 0.5, 1e-12);
  EXPECT_EQ(ReciprocalRank({false, false}, 10), 0.0);
  EXPECT_EQ(ReciprocalRank({false, false, true}, 2), 0.0);
}

TEST(Map, HandComputed) {
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2 = 5/6.
  EXPECT_NEAR(AveragePrecision({true, false, true}), 5.0 / 6.0, 1e-12);
  EXPECT_EQ(AveragePrecision({false, false}), 0.0);
}

TEST(Ranking, SortDescendingStable) {
  auto order = SortIndicesDescending({0.2, 0.9, 0.9, 0.1});
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 3u);
}

TEST(Ranking, ReorderByRanking) {
  std::vector<double> scores = {0.1, 0.9, 0.5};
  std::vector<bool> flags = {true, false, true};
  auto out = ReorderByRanking(scores, flags);
  EXPECT_FALSE(out[0]);  // 0.9 item
  EXPECT_TRUE(out[1]);   // 0.5 item
  EXPECT_TRUE(out[2]);   // 0.1 item
}

TEST(Regression, RecoverLine) {
  std::vector<double> x = {0, 1, 2, 3, 4};
  std::vector<double> y = {1, 3, 5, 7, 9};  // y = 2x + 1
  LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r, 1.0, 1e-12);
}

TEST(Regression, DegenerateX) {
  LinearFit fit = FitLine({1, 1, 1}, {1, 2, 3});
  EXPECT_EQ(fit.slope, 0.0);
}

// Property: Spearman is invariant under strictly monotone transforms.
class SpearmanInvariance : public ::testing::TestWithParam<int> {};

TEST_P(SpearmanInvariance, MonotoneTransformInvariant) {
  const int seed = GetParam();
  std::vector<double> x, y;
  uint64_t s = static_cast<uint64_t>(seed) * 2654435761u + 1;
  for (int i = 0; i < 40; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    x.push_back(static_cast<double>(s >> 40));
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    y.push_back(static_cast<double>(s >> 40));
  }
  const double base = SpearmanCorrelation(x, y);
  std::vector<double> xt = x;
  for (double& v : xt) v = std::exp(v / 1.0e7);  // strictly increasing
  EXPECT_NEAR(SpearmanCorrelation(xt, y), base, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpearmanInvariance, ::testing::Range(1, 8));

}  // namespace
}  // namespace subrec::eval
