#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "datagen/datasets.h"
#include "graph/academic_graph.h"
#include "graph/neighborhood.h"

namespace subrec::graph {
namespace {

/// Tiny hand-built corpus: 3 papers (2 cites 0 and 1), 2 authors, 1 venue.
corpus::Corpus TinyCorpus() {
  corpus::Corpus c;
  c.num_venues = 1;
  c.num_affiliations = 1;
  corpus::Author a0, a1;
  a0.id = 0;
  a0.affiliation = 0;
  a1.id = 1;
  a1.affiliation = 0;
  c.authors = {a0, a1};
  for (int i = 0; i < 3; ++i) {
    corpus::Paper p;
    p.id = i;
    p.year = 2010 + i;
    p.venue = 0;
    p.authors = {i % 2};
    p.keywords = {"kw" + std::to_string(i % 2)};
    c.papers.push_back(p);
  }
  c.papers[2].references = {0, 1};
  c.authors[0].papers = {0, 2};
  c.authors[1].papers = {1};
  return c;
}

TEST(AcademicGraph, DirectionalityOfCitations) {
  AcademicGraph g;
  const NodeId a = g.AddNode(EntityType::kPaper, 0);
  const NodeId b = g.AddNode(EntityType::kPaper, 1);
  g.AddEdge(a, b, RelationType::kCites);
  // One-way: only a's out-list and b's in-list.
  EXPECT_EQ(g.OutEdges(a).size(), 1u);
  EXPECT_EQ(g.OutEdges(b).size(), 0u);
  EXPECT_EQ(g.InEdges(b).size(), 1u);
  EXPECT_EQ(g.InEdges(a).size(), 0u);
}

TEST(AcademicGraph, TwoWayRelationsMirrored) {
  AcademicGraph g;
  const NodeId p = g.AddNode(EntityType::kPaper, 0);
  const NodeId v = g.AddNode(EntityType::kVenue, 0);
  g.AddEdge(p, v, RelationType::kPublishedIn);
  EXPECT_EQ(g.OutEdges(p).size(), 1u);
  EXPECT_EQ(g.OutEdges(v).size(), 1u);
  EXPECT_EQ(g.OutEdges(v)[0].dst, p);
}

TEST(AcademicGraph, AsymmetricNeighborhoods) {
  AcademicGraph g;
  const NodeId p = g.AddNode(EntityType::kPaper, 0);
  const NodeId cited = g.AddNode(EntityType::kPaper, 1);
  const NodeId citer = g.AddNode(EntityType::kPaper, 2);
  const NodeId venue = g.AddNode(EntityType::kVenue, 0);
  g.AddEdge(p, cited, RelationType::kCites);
  g.AddEdge(citer, p, RelationType::kCites);
  g.AddEdge(p, venue, RelationType::kPublishedIn);

  // Interest: venue + the paper p cites.
  const auto interest = g.InterestNeighborhood(p);
  ASSERT_EQ(interest.size(), 2u);
  EXPECT_TRUE(std::any_of(interest.begin(), interest.end(),
                          [&](const Edge& e) { return e.dst == cited; }));
  EXPECT_FALSE(std::any_of(interest.begin(), interest.end(),
                           [&](const Edge& e) { return e.dst == citer; }));

  // Influence: venue + the paper citing p.
  const auto influence = g.InfluenceNeighborhood(p);
  ASSERT_EQ(influence.size(), 2u);
  EXPECT_TRUE(std::any_of(influence.begin(), influence.end(),
                          [&](const Edge& e) { return e.dst == citer; }));
  EXPECT_FALSE(std::any_of(influence.begin(), influence.end(),
                           [&](const Edge& e) { return e.dst == cited; }));
}

TEST(BuildAcademicGraph, MaterializesAllEntityFamilies) {
  const corpus::Corpus c = TinyCorpus();
  GraphIndex index = BuildAcademicGraph(c);
  // 3 papers + 2 authors + 1 affiliation + 1 venue + 2 keywords + 3 years.
  EXPECT_EQ(index.graph.num_nodes(), 12u);
  EXPECT_EQ(index.paper_nodes.size(), 3u);
  EXPECT_EQ(index.author_nodes.size(), 2u);
  // Paper 2 cites both others.
  const auto& out = index.graph.OutEdges(index.paper_nodes[2]);
  int cites = 0;
  for (const Edge& e : out)
    if (e.rel == RelationType::kCites) ++cites;
  EXPECT_EQ(cites, 2);
}

TEST(BuildAcademicGraph, CitationYearCutoffDropsLateCitedPapers) {
  const corpus::Corpus c = TinyCorpus();
  GraphBuildOptions options;
  options.citation_year_cutoff = 2010;  // only paper 0 (2010) is citable
  GraphIndex index = BuildAcademicGraph(c, options);
  const auto& out = index.graph.OutEdges(index.paper_nodes[2]);
  int cites = 0;
  for (const Edge& e : out) {
    if (e.rel == RelationType::kCites) {
      ++cites;
      EXPECT_EQ(e.dst, index.paper_nodes[0]);
    }
  }
  EXPECT_EQ(cites, 1);  // the edge to paper 1 (2011) is dropped
}

TEST(BuildAcademicGraph, PatentStyleMinimalEntities) {
  const corpus::Corpus c = TinyCorpus();
  GraphBuildOptions options;
  options.include_affiliations = false;
  options.include_venues = false;
  options.include_keywords = false;
  options.include_classification = false;
  options.include_years = false;
  GraphIndex index = BuildAcademicGraph(c, options);
  // 3 papers + 2 authors.
  EXPECT_EQ(index.graph.num_nodes(), 5u);
  for (size_t n = 0; n < index.graph.num_nodes(); ++n) {
    const EntityType t = index.graph.type(static_cast<NodeId>(n));
    EXPECT_TRUE(t == EntityType::kPaper || t == EntityType::kAuthor);
  }
}

TEST(Neighborhood, SamplesAtMostK) {
  const corpus::Corpus c = TinyCorpus();
  GraphIndex index = BuildAcademicGraph(c);
  Rng rng(1);
  for (size_t n = 0; n < index.graph.num_nodes(); ++n) {
    const auto sample =
        SampleNeighbors(index.graph, static_cast<NodeId>(n),
                        NeighborhoodKind::kInterest, 2, rng);
    EXPECT_LE(sample.size(), 2u);
  }
}

TEST(Neighborhood, SmallNeighborhoodReturnedWhole) {
  AcademicGraph g;
  const NodeId p = g.AddNode(EntityType::kPaper, 0);
  const NodeId v = g.AddNode(EntityType::kVenue, 0);
  g.AddEdge(p, v, RelationType::kPublishedIn);
  Rng rng(2);
  const auto sample =
      SampleNeighbors(g, p, NeighborhoodKind::kInterest, 10, rng);
  ASSERT_EQ(sample.size(), 1u);
  EXPECT_EQ(sample[0].dst, v);
}

TEST(Neighborhood, DegreeStats) {
  const corpus::Corpus c = TinyCorpus();
  GraphIndex index = BuildAcademicGraph(c);
  const DegreeStats stats = ComputeDegreeStats(index.graph);
  EXPECT_GT(stats.mean_out, 0.0);
  EXPECT_GE(stats.max_out, stats.mean_out);
}

TEST(EntityNames, Stable) {
  EXPECT_STREQ(EntityTypeName(EntityType::kPaper), "paper");
  EXPECT_STREQ(RelationTypeName(RelationType::kCites), "cite");
  EXPECT_STREQ(RelationTypeName(RelationType::kUnitIs), "unit is");
}

}  // namespace
}  // namespace subrec::graph
