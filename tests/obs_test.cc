#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/gmm.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/rng.h"
#include "la/matrix.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "obs/training_observer.h"
#include "subspace/trainer.h"
#include "subspace/twin_network.h"

namespace subrec::obs {
namespace {

/// Minimal recursive-descent JSON checker — strict enough to catch comma,
/// quoting, and nesting mistakes in our writer without a third-party parser.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!ParseValue()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t'))
      ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
        return ParseLiteral("true");
      case 'f':
        return ParseLiteral("false");
      case 'n':
        return ParseLiteral("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      if (!ParseString()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
      SkipWs();
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      if (!ParseValue()) return false;
      SkipWs();
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
            ++pos_;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters must be escaped
      }
    }
    return false;
  }

  bool ParseNumber() {
    Consume('-');
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) digits = true;
      ++pos_;
    }
    return digits;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(JsonWriter, ExactObjectOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("gmm");
  w.Key("iters").Int(12);
  w.Key("loss").Number(0.5);
  w.Key("ok").Bool(true);
  w.Key("next").Null();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"gmm\",\"iters\":12,\"loss\":0.5,\"ok\":true,"
            "\"next\":null}");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("rows").BeginArray();
  w.BeginObject().Key("k").Int(1).EndObject();
  w.BeginObject().Key("k").Int(2).EndObject();
  w.EndArray();
  w.Key("empty").BeginArray().EndArray();
  w.EndObject();
  const std::string out = w.str();
  EXPECT_EQ(out, "{\"rows\":[{\"k\":1},{\"k\":2}],\"empty\":[]}");
  EXPECT_TRUE(JsonChecker(out).Valid());
}

TEST(JsonWriter, EscapesStringsAndNonFiniteNumbers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s").String("a\"b\\c\nd\te\x01"
                    "f");
  w.Key("inf").Number(std::numeric_limits<double>::infinity());
  w.Key("nan").Number(std::numeric_limits<double>::quiet_NaN());
  w.EndObject();
  const std::string out = w.str();
  EXPECT_NE(out.find("a\\\"b\\\\c\\nd\\te\\u0001f"), std::string::npos);
  EXPECT_NE(out.find("\"inf\":null"), std::string::npos);
  EXPECT_NE(out.find("\"nan\":null"), std::string::npos);
  EXPECT_TRUE(JsonChecker(out).Valid());
}

TEST(JsonWriter, EscapesEveryControlCharacter) {
  // Exposition output must stay valid JSON for any metric/trace content:
  // all 32 C0 control characters need escaping, either as their short
  // forms (\b \f \n \r \t) or as \u00XX.
  for (int c = 1; c < 0x20; ++c) {
    JsonWriter w;
    const char raw[2] = {static_cast<char>(c), '\0'};
    w.BeginObject().Key("k").String(std::string_view(raw, 1)).EndObject();
    const std::string out = w.str();
    EXPECT_TRUE(JsonChecker(out).Valid()) << "control char " << c << ": "
                                          << out;
    // The raw control byte itself must never appear in the output.
    EXPECT_EQ(out.find(static_cast<char>(c)), std::string::npos)
        << "control char " << c << " leaked unescaped";
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("bell").String("\x07");
  w.Key("esc").String("\x1b[0m");
  w.Key("unit_sep").String("\x1f");
  w.EndObject();
  const std::string out = w.str();
  EXPECT_NE(out.find("\\u0007"), std::string::npos);
  EXPECT_NE(out.find("\\u001b[0m"), std::string::npos);
  EXPECT_NE(out.find("\\u001f"), std::string::npos);
  EXPECT_TRUE(JsonChecker(out).Valid()) << out;
}

TEST(JsonWriter, EscapesQuoteAndBackslashRuns) {
  JsonWriter w;
  w.BeginObject();
  w.Key("path").String("C:\\dir\\\\file");     // backslash and double run
  w.Key("quoted").String("\"\"");              // adjacent quotes
  w.Key("mixed").String("\\\"");               // backslash then quote
  w.Key("key\"with\\both").String("v");        // keys escape too
  w.EndObject();
  const std::string out = w.str();
  EXPECT_NE(out.find("\"path\":\"C:\\\\dir\\\\\\\\file\""),
            std::string::npos);
  EXPECT_NE(out.find("\"quoted\":\"\\\"\\\"\""), std::string::npos);
  EXPECT_NE(out.find("\"mixed\":\"\\\\\\\"\""), std::string::npos);
  EXPECT_NE(out.find("\"key\\\"with\\\\both\""), std::string::npos);
  EXPECT_TRUE(JsonChecker(out).Valid()) << out;
}

TEST(JsonWriter, PassesUtf8MultibyteSequencesThrough) {
  // RFC 8259 only requires escaping of '"', '\\', and control characters;
  // multibyte UTF-8 (NUL-free) passes through byte-for-byte. The bytes
  // below spell out 2-, 3-, and 4-byte sequences explicitly so the source
  // file stays ASCII.
  const std::string two_byte = "\xc3\xa9";          // e-acute
  const std::string three_byte = "\xe4\xb8\xad";    // CJK ideograph
  const std::string four_byte = "\xf0\x9f\x93\x88"; // chart emoji
  JsonWriter w;
  w.BeginObject();
  w.Key("mix").String(two_byte + "=" + three_byte + four_byte);
  w.EndObject();
  const std::string out = w.str();
  EXPECT_NE(out.find(two_byte + "=" + three_byte + four_byte),
            std::string::npos);
  // No byte of a multibyte sequence may be \u-escaped or dropped.
  EXPECT_EQ(out.find("\\u00c3"), std::string::npos);
  EXPECT_EQ(out.find("\\u00e4"), std::string::npos);
  EXPECT_TRUE(JsonChecker(out).Valid()) << out;
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0});
  h.Observe(0.5);  // <= 1.0 -> bucket 0
  h.Observe(1.0);  // boundary lands in bucket 0 (v <= bound)
  h.Observe(1.5);  // bucket 1
  h.Observe(2.0);  // boundary -> bucket 1
  h.Observe(2.5);  // overflow
  const std::vector<int64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 2);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_NEAR(h.sum(), 7.5, 1e-12);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.bucket_counts()[0], 0);
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("obs_test.same_name");
  Counter* b = reg.GetCounter("obs_test.same_name");
  EXPECT_EQ(a, b);
  // The contract: a histogram name owns its bounds, so every re-lookup
  // passes the bounds of the first registration.
  Histogram* h1 = reg.GetHistogram("obs_test.same_hist", {1.0, 2.0});
  Histogram* h2 = reg.GetHistogram("obs_test.same_hist", {1.0, 2.0});
  EXPECT_EQ(h1, h2);
  ASSERT_EQ(h1->bounds().size(), 2u);
  EXPECT_EQ(h1->bounds()[0], 1.0);
}

#if SUBREC_DCHECK_IS_ON
TEST(MetricsRegistryDeathTest, MismatchedHistogramBoundsAreAProgrammingError) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetHistogram("obs_test.bounds_clash", {1.0, 2.0});
  // Same name, different bounds: the second call site's observations would
  // silently land in the first one's buckets, so it must die loudly.
  EXPECT_DEATH(reg.GetHistogram("obs_test.bounds_clash", {9.0}),
               "bounds differ from the first registration");
  // Identical bounds stay fine.
  EXPECT_NE(reg.GetHistogram("obs_test.bounds_clash", {1.0, 2.0}), nullptr);
}
#endif  // SUBREC_DCHECK_IS_ON

TEST(MetricsRegistry, SnapshotAndResetKeepPointersValid) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test.snapshot.counter");
  Gauge* g = reg.GetGauge("obs_test.snapshot.gauge");
  Histogram* h = reg.GetHistogram("obs_test.snapshot.hist", {10.0});
  c->Increment(3);
  g->Set(2.5);
  h->Observe(4.0);

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("obs_test.snapshot.counter"), 3);
  EXPECT_NEAR(snap.gauges.at("obs_test.snapshot.gauge"), 2.5, 1e-12);
  EXPECT_EQ(snap.histograms.at("obs_test.snapshot.hist").count, 1);

  reg.Reset();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0);
  // The snapshot is detached and unaffected by the reset.
  EXPECT_EQ(snap.counters.at("obs_test.snapshot.counter"), 3);
  // The instruments are still registered and usable.
  c->Increment();
  EXPECT_EQ(reg.Snapshot().counters.at("obs_test.snapshot.counter"), 1);
}

TEST(MetricsSnapshot, WritesValidJson) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test.json.counter")->Increment(7);
  reg.GetHistogram("obs_test.json.hist", {1.0})->Observe(0.5);
  JsonWriter w;
  reg.Snapshot().WriteJson(&w);
  const std::string out = w.str();
  EXPECT_TRUE(JsonChecker(out).Valid()) << out;
  EXPECT_NE(out.find("\"obs_test.json.counter\":7"), std::string::npos);
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Disable();
  {
    SUBREC_TRACE_SPAN("obs_test/ignored");
  }
  EXPECT_TRUE(rec.Events().empty());
}

TEST(TraceRecorder, DisabledFastPathLeavesRecorderUntouched) {
  // The disabled fast path is ONE relaxed load of the enabled flag:
  // TraceSpan and Record must check enabled() before touching any guarded
  // state, so a burst of spans leaves the recorder bit-for-bit unchanged —
  // no events, no drop counting, no lock traffic for TSan to flag.
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Disable();
  for (int i = 0; i < 1000; ++i) {
    SUBREC_TRACE_SPAN("obs_test/disabled_burst");
    rec.Record("obs_test/disabled_direct", i, 1);
  }
  int64_t dropped = -1;
  EXPECT_TRUE(rec.Events(&dropped).empty());
  EXPECT_EQ(dropped, 0);
  EXPECT_FALSE(rec.enabled());
}

TEST(TraceRecorder, NestedSpansRecordInnerFirst) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(64);
  {
    SUBREC_TRACE_SPAN("obs_test/outer");
    {
      SUBREC_TRACE_SPAN("obs_test/inner");
    }
  }
  const std::vector<TraceEvent> events = rec.Events();
  rec.Disable();
  ASSERT_EQ(events.size(), 2u);
  // Inner scope closes first, so it is recorded first.
  EXPECT_STREQ(events[0].name, "obs_test/inner");
  EXPECT_STREQ(events[1].name, "obs_test/outer");
  // The outer span encloses the inner one in time.
  EXPECT_LE(events[1].start_ns, events[0].start_ns);
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
}

TEST(TraceRecorder, RingKeepsNewestAndCountsDropped) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(4);
  for (int i = 0; i < 6; ++i) rec.Record("obs_test/spin", i, 1);
  int64_t dropped = 0;
  const std::vector<TraceEvent> events = rec.Events(&dropped);
  rec.Disable();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(dropped, 2);
  // Oldest-first unwrap: the two earliest starts were overwritten.
  EXPECT_EQ(events.front().start_ns, 2);
  EXPECT_EQ(events.back().start_ns, 5);
}

TEST(TraceRecorder, OverwritesFeedDroppedCounterAndRunReport) {
  // Ring overwrites are silent data loss; they must be visible three ways:
  // the DroppedSpans accessor, the obs.trace.dropped registry counter, and
  // the spans_dropped field of any report that captures spans.
  Counter* const dropped_counter =
      MetricsRegistry::Global().GetCounter("obs.trace.dropped");
  const int64_t before = dropped_counter->value();

  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(4);
  EXPECT_EQ(rec.DroppedSpans(), 0);
  for (int i = 0; i < 10; ++i) rec.Record("obs_test/drop_count", i, 1);
  EXPECT_EQ(rec.DroppedSpans(), 6);
  EXPECT_EQ(dropped_counter->value() - before, 6);

  RunReport report("obs_test_dropped");
  report.CaptureSpans();
  rec.Disable();
  const std::string json = report.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"spans_dropped\":6"), std::string::npos) << json;
  rec.Clear();
}

TEST(TraceRecorder, GmmFitProducesValidChromeTrace) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable();
  Rng rng(4);
  la::Matrix data(60, 4);
  for (size_t i = 0; i < data.size(); ++i) data[i] = rng.Gaussian();
  cluster::GaussianMixture gmm(
      cluster::GmmOptions{.num_components = 2, .max_iterations = 5});
  ASSERT_TRUE(gmm.Fit(data).ok());
  const std::string json = rec.ChromeTraceJson();
  const std::vector<SpanTotal> totals = rec.AggregateTotals();
  rec.Disable();

  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 200);
  EXPECT_EQ(json.front(), '[');  // a trace_event array, not an object
  EXPECT_NE(json.find("\"name\":\"gmm/fit\""), std::string::npos);
  EXPECT_NE(json.find("\"gmm/e_step\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  bool found_fit = false;
  for (const SpanTotal& t : totals) {
    if (t.name == "gmm/fit") {
      found_fit = true;
      EXPECT_EQ(t.count, 1);
      EXPECT_GT(t.total_ns, 0);
    }
  }
  EXPECT_TRUE(found_fit);
}

TEST(RunReport, JsonIsValidAndWriteFileRoundTrips) {
  MetricsRegistry::Global().GetCounter("obs_test.report.counter")->Increment();
  RunReport report("obs_test");
  report.set_build_id("test-build");
  report.set_dataset("synthetic/tiny");
  // Use exactly-representable doubles so the %.17g output is predictable.
  report.AddScalar("ndcg.k20", 0.125);
  report.AddScalar("ndcg.k20", 0.75);  // re-add overwrites
  report.AddString("mode", "unit-test");
  report.CaptureMetrics();
  report.CaptureSpans();

  const std::string json = report.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"report\":\"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"ndcg.k20\":0.75"), std::string::npos);
  EXPECT_EQ(json.find("0.125"), std::string::npos);
  EXPECT_NE(json.find("\"dataset\":\"synthetic/tiny\""), std::string::npos);

  std::string path;
  const Status status = report.WriteFile(::testing::TempDir(), &path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(path.find("BENCH_obs_test.json"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonChecker(buffer.str()).Valid());
}

TEST(RunReport, WriteFileFailsOnBadDirectory) {
  RunReport report("obs_test_bad");
  const Status status = report.WriteFile("/nonexistent-dir-for-obs-test");
  EXPECT_FALSE(status.ok());
}

TEST(TrainingObserver, SemTrainerReportsEveryEpoch) {
  subspace::SubspaceEncoderOptions encoder;
  encoder.input_dim = 24;
  encoder.hidden_dim = 8;
  encoder.residual = false;
  encoder.attention_dim = 6;
  encoder.mlp_layers = 2;
  subspace::TwinNetwork net(encoder, 7);

  Rng rng(8);
  std::vector<rules::PaperContentFeatures> features(3);
  for (rules::PaperContentFeatures& f : features) {
    for (int s = 0; s < 3; ++s) {
      std::vector<double> v(24);
      for (double& x : v) x = rng.Gaussian(0.0, 1.0);
      f.sentence_vectors.push_back(std::move(v));
      f.roles.push_back(s);
    }
  }
  const std::vector<subspace::Triplet> triplets = {
      {0, 1, 2, 0, 1.0}, {1, 0, 2, 1, 0.8}};

  subspace::SemTrainerOptions options;
  options.epochs = 2;
  std::vector<TrainingEvent> events;
  options.observer = [&events](const TrainingEvent& e) {
    events.push_back(e);
  };
  const auto stats = subspace::TrainTwinNetwork(features, triplets, options, &net);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  ASSERT_EQ(events.size(), 2u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].model, "sem");
    EXPECT_EQ(events[i].epoch, static_cast<int>(i) + 1);
    EXPECT_EQ(events[i].total_epochs, 2);
    EXPECT_EQ(events[i].samples, 2);
    EXPECT_TRUE(std::isfinite(events[i].loss));
    EXPECT_GE(events[i].elapsed_seconds, 0.0);
  }
  EXPECT_GE(events[1].elapsed_seconds, events[0].elapsed_seconds);
}

TEST(Logging, CaptureSeesFormattedLines) {
  LogCapture capture;
  SUBREC_LOG(Warning) << "obs-test-warning " << 42;
  const std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("obs-test-warning 42"), std::string::npos);
  // The prefix carries level, thread id, and file:line.
  EXPECT_NE(lines[0].find("WARN"), std::string::npos);
  EXPECT_NE(lines[0].find(" T"), std::string::npos);
  EXPECT_NE(lines[0].find("obs_test.cc:"), std::string::npos);
}

TEST(Logging, SetLogSinkRestores) {
  std::vector<std::string> seen;
  LogSink previous = SetLogSink(
      [&seen](LogLevel, const std::string& line) { seen.push_back(line); });
  SUBREC_LOG(Error) << "sink-test";
  SetLogSink(std::move(previous));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_NE(seen[0].find("sink-test"), std::string::npos);
}

TEST(ObsConcurrency, HammerKeepsExactTotals) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* counter = reg.GetCounter("obs_test.hammer.counter");
  Gauge* gauge = reg.GetGauge("obs_test.hammer.gauge");
  Histogram* hist = reg.GetHistogram("obs_test.hammer.hist", {0.25, 0.5, 0.75});
  counter->Reset();
  hist->Reset();
  TraceRecorder::Global().Enable(1 << 10);

  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([=] {
      for (int i = 0; i < kIters; ++i) {
        SUBREC_TRACE_SPAN("obs_test/hammer");
        counter->Increment();
        gauge->Set(static_cast<double>(i));
        hist->Observe(static_cast<double>(i % 4) / 4.0);
        if (i % 1024 == 0) SUBREC_LOG(Debug) << "hammer " << i;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  TraceRecorder::Global().Disable();

  EXPECT_EQ(counter->value(), kThreads * kIters);
  EXPECT_EQ(hist->count(), kThreads * kIters);
  // Every observation lands in exactly one bucket.
  int64_t bucket_sum = 0;
  for (int64_t b : hist->bucket_counts()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, kThreads * kIters);
  EXPECT_GE(gauge->value(), 0.0);
}

}  // namespace
}  // namespace subrec::obs
