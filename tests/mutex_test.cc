// Runtime contract tests for the annotated common::Mutex layer. The
// compile-time side (Clang thread-safety analysis) is proven by the
// tests/negcompile/ WILL_FAIL cases; these cover the dynamic behavior —
// mutual exclusion under contention, CondVar handshakes, TryLock, and
// RAII release — and give TSan a dedicated surface to sweep.
#include "common/mutex.h"

#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "gtest/gtest.h"

namespace subrec::common {
namespace {

TEST(MutexTest, ContendedIncrementsAreExact) {
  struct Counter {
    Mutex mu;
    long total SUBREC_GUARDED_BY(mu) = 0;
  } counter;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&counter.mu);
        ++counter.total;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&counter.mu);
  EXPECT_EQ(counter.total, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  std::thread prober([&mu] {
    if (mu.TryLock()) {
      mu.Unlock();
      ADD_FAILURE() << "TryLock succeeded while another thread held the lock";
    }
  });
  prober.join();
  mu.Unlock();
}

TEST(MutexTest, MutexLockReleasesAtScopeExit) {
  Mutex mu;
  { MutexLock lock(&mu); }
  if (mu.TryLock()) {
    mu.AssertHeld();
    mu.Unlock();
  } else {
    ADD_FAILURE() << "MutexLock failed to release at scope exit";
  }
}

TEST(CondVarTest, WaitNotifyHandshake) {
  struct Channel {
    Mutex mu;
    CondVar cv;
    int stage SUBREC_GUARDED_BY(mu) = 0;
  } ch;
  std::thread peer([&ch] {
    MutexLock lock(&ch.mu);
    while (ch.stage < 1) ch.cv.Wait(&ch.mu);
    ch.stage = 2;
    ch.cv.NotifyAll();
  });
  {
    MutexLock lock(&ch.mu);
    ch.stage = 1;
    ch.cv.NotifyAll();
    while (ch.stage < 2) ch.cv.Wait(&ch.mu);
    EXPECT_EQ(ch.stage, 2);
  }
  peer.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  struct Gate {
    Mutex mu;
    CondVar cv;
    bool open SUBREC_GUARDED_BY(mu) = false;
    int through SUBREC_GUARDED_BY(mu) = 0;
  } gate;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&gate] {
      MutexLock lock(&gate.mu);
      while (!gate.open) gate.cv.Wait(&gate.mu);
      ++gate.through;
    });
  }
  {
    MutexLock lock(&gate.mu);
    gate.open = true;
    gate.cv.NotifyAll();
  }
  for (std::thread& t : waiters) t.join();
  MutexLock lock(&gate.mu);
  EXPECT_EQ(gate.through, kWaiters);
}

}  // namespace
}  // namespace subrec::common
